//! `hlicc` — the two-process compiler driver the paper's Figure 3 sketches.
//!
//! The paper's flow: the front-end (SUIF) compiles `foo.c` and writes
//! `foo.hli`; the back-end (GCC) compiles the same source, importing
//! `foo.hli` on demand function by function. This driver does both halves
//! over a real file so the interchange format is exercised end to end:
//!
//! ```text
//! hlicc front  <input.c> [-o out.hli]      # front end: write the HLI file
//! hlicc back   <input.c> <in.hli> [flags]  # back end: import, schedule, run
//! hlicc build  <input.c> [flags]           # both halves through a temp file
//! hlicc serve  [serve flags]               # batched compile daemon (docs/SERVE.md)
//! ```
//!
//! `serve` speaks NDJSON on stdin/stdout (or `--socket <path>`), answering
//! from a persistent content-addressed cache at `--cache <dir>` (default
//! `.hlicc-cache`); `--cache-max-mb N` bounds it, `--jobs N` sizes the
//! miss fan-out pool. The wire and cache contract is docs/SERVE.md.
//!
//! Back-end flags: `--no-hli` (GCC-only build), `--dump-rtl`, `--unroll N`,
//! `--cse`, `--licm`, `--machine NAME[,NAME...]` (select machine models;
//! the first drives the scheduler's latency table), `--time` (simulate on
//! every selected model).
//!
//! Every subcommand also accepts the observability flags:
//! `--stats [text|json]` prints the metrics registry after the normal
//! output, `--trace-out <file.json>` writes the phase trace as Chrome
//! `trace_event` JSON, and `--provenance-out <file.jsonl>` records every
//! HLI-justified optimization decision as one JSON object per line.

use hli_backend::cse::cse_function;
use hli_backend::ddg::DepMode;
use hli_backend::licm::licm_function;
use hli_backend::lower::lower_with_loops;
use hli_backend::mapping::map_function;
use hli_backend::rtl::dump_func;
use hli_backend::sched::schedule_function;
use hli_backend::unroll::unroll_function;
use hli_core::serialize::{encode_file_v2, SerializeOpts};
use hli_core::{HliReader, QueryCache};
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_machine::MachineBackend;

fn fail(msg: &str) -> ! {
    eprintln!("hlicc: {msg}");
    std::process::exit(1)
}

fn read_source(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

const OPTS: SerializeOpts = SerializeOpts { include_names: true };

fn front(input: &str, out: Option<String>) {
    let _phase = hli_obs::span("hlicc.front");
    let src = read_source(input);
    let (prog, sema) = compile_to_ast(&src).unwrap_or_else(|e| fail(&e));
    let hli = generate_hli(&prog, &sema);
    let errs = hli_core::verify_file(&hli);
    if let Some((unit, err)) = errs.first() {
        fail(&format!("internal: invalid HLI for `{unit}`: {err}"));
    }
    let bytes = encode_file_v2(&hli, OPTS);
    let out = out.unwrap_or_else(|| format!("{}.hli", input.trim_end_matches(".c")));
    std::fs::write(&out, &bytes).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "{input}: {} unit(s), {} bytes of HLI -> {out}",
        hli.entries.len(),
        bytes.len()
    );
}

struct BackFlags {
    use_hli: bool,
    dump_rtl: bool,
    unroll: Option<u32>,
    cse: bool,
    licm: bool,
    time: bool,
    lazy_import: bool,
    jobs: usize,
    /// Machine models (`--machine NAME[,NAME...]`): the first supplies the
    /// scheduler's and the estimators' latency table, and `--time`
    /// simulates on every listed model — so the timed configs are, by
    /// construction, the ones the scheduler assumed.
    machines: Vec<&'static dyn MachineBackend>,
}

/// Everything one function's trip through the back-end produced, carried
/// back to the main thread so diagnostics and dumps can be emitted in a
/// deterministic order.
struct FuncOut {
    messages: Vec<String>,
    dump: Option<String>,
    stats: hli_backend::ddg::QueryStats,
    func: hli_backend::rtl::RtlFunc,
}

fn back(input: &str, hli_path: &str, flags: BackFlags) {
    let _phase = hli_obs::span("hlicc.back");
    let src = read_source(input);
    let (prog, sema) = compile_to_ast(&src).unwrap_or_else(|e| fail(&e));
    let (rtl, loops) = {
        let _s = hli_obs::span("backend.lower");
        lower_with_loops(&prog, &sema)
    };
    // On-demand import: open the index, decode per function (§3.2.1).
    // Without `--lazy-import` every unit is decoded up front, matching the
    // monolithic import a batch build performs.
    let image =
        std::fs::read(hli_path).unwrap_or_else(|e| fail(&format!("cannot read {hli_path}: {e}")));
    let reader = HliReader::open(image, OPTS).unwrap_or_else(|e| fail(&e.to_string()));
    if !flags.lazy_import {
        // A unit failing to decode is not fatal: its error is memoized and
        // the function it belongs to is quarantined below.
        if let Err(e) = reader.preload() {
            eprintln!("hlicc: warning: eager import: {e}; affected unit(s) will be quarantined");
        }
    }
    let mode = if flags.use_hli {
        DepMode::Combined
    } else {
        DepMode::GccOnly
    };
    let mach = *flags.machines.first().unwrap_or_else(|| fail("no machine models selected"));

    // One pool work item per function (`--jobs N`, 0 = all CPUs). Each
    // item captures its metrics/provenance into a shard and returns its
    // diagnostics as data; the main thread then commits shards and prints
    // everything in name-sorted function order, so the output does not
    // depend on worker completion order.
    let prov_on = hli_obs::provenance::active().is_some();
    let results = hli_pool::run(flags.jobs, &rtl.funcs, |_w, f| {
        hli_obs::capture(prov_on, || -> Result<FuncOut, String> {
            let _s = hli_obs::span(format!("backend.func.{}", f.name));
            let mut messages = Vec::new();
            // Trust boundary (§3.2.3): a unit that fails to decode or to
            // verify is *quarantined* — this function compiles on the pure
            // GCC-dependence path instead of aborting the whole build.
            let entry = match reader.get(&f.name) {
                Ok(e) => e.cloned(),
                Err(e) if flags.use_hli => {
                    hli_backend::driver::record_quarantine(&f.name, None, 1, &e.to_string());
                    messages.push(format!(
                        "warning: `{}`: HLI unit quarantined ({e}); compiling without HLI",
                        f.name
                    ));
                    None
                }
                Err(_) => None,
            };
            let entry = entry.filter(|e| {
                if !flags.use_hli {
                    return true;
                }
                let errs = e.verify();
                let Some(first) = errs.first() else { return true };
                hli_backend::driver::record_quarantine(
                    &f.name,
                    first.region.map(|r| r.0),
                    errs.len() as u64,
                    &first.to_string(),
                );
                messages.push(format!(
                    "warning: `{}`: HLI unit quarantined ({first}); compiling without HLI",
                    f.name
                ));
                false
            });
            let mut cur = f.clone();
            let mut stats = hli_backend::ddg::QueryStats::default();
            let scheduled = match entry {
                Some(mut entry) if flags.use_hli => {
                    let mut map = map_function(&cur, &entry);
                    if !map.unmapped_insns.is_empty() || !map.unmapped_items.is_empty() {
                        messages.push(format!(
                            "warning: `{}`: {} refs / {} items unmapped (treated as unknown)",
                            f.name,
                            map.unmapped_insns.len(),
                            map.unmapped_items.len()
                        ));
                    }
                    if let Some(u) = flags.unroll {
                        let r = unroll_function(
                            &cur,
                            &loops[&f.name],
                            u,
                            Some((&mut entry, &mut map)),
                            mach,
                        );
                        cur = r.func;
                        if r.unrolled > 0 {
                            messages.push(format!(
                                "`{}`: unrolled {} loop(s) by {u}",
                                f.name, r.unrolled
                            ));
                        }
                    }
                    if flags.cse {
                        let r = cse_function(&cur, Some((&mut entry, &mut map)), mode, mach);
                        if r.loads_eliminated > 0 {
                            messages.push(format!(
                                "`{}`: CSE removed {} load(s)",
                                f.name, r.loads_eliminated
                            ));
                        }
                        cur = r.func;
                    }
                    if flags.licm {
                        let r = licm_function(&cur, Some((&mut entry, &mut map)), mode, mach);
                        if r.hoisted > 0 {
                            messages
                                .push(format!("`{}`: LICM hoisted {} load(s)", f.name, r.hoisted));
                        }
                        cur = r.func;
                    }
                    // Unlike import-time corruption (quarantined above), a
                    // verify failure *after* maintenance is our own bug —
                    // keep it fatal so it cannot hide.
                    let errs = entry.verify();
                    if let Some(first) = errs.first() {
                        return Err(format!(
                            "maintenance broke `{}`: {first} ({} violation(s))",
                            f.name,
                            errs.len()
                        ));
                    }
                    let cache = QueryCache::new();
                    let q = cache.attach(&entry);
                    let side = hli_backend::ddg::HliSide { query: &q, map: &map };
                    let r = schedule_function(&cur, Some(&side), mode, mach);
                    stats.add(&r.stats);
                    r.func
                }
                _ => {
                    if flags.cse {
                        cur = cse_function(&cur, None, DepMode::GccOnly, mach).func;
                    }
                    if flags.licm {
                        cur = licm_function(&cur, None, DepMode::GccOnly, mach).func;
                    }
                    let r = schedule_function(&cur, None, DepMode::GccOnly, mach);
                    stats.add(&r.stats);
                    r.func
                }
            };
            let dump = flags.dump_rtl.then(|| dump_func(&scheduled));
            Ok(FuncOut { messages, dump, stats, func: scheduled })
        })
    });

    // Name-sorted emission: diagnostics, RTL dumps and shard commits all
    // follow the same stable order regardless of which worker ran what.
    let mut slots: Vec<Option<(Result<FuncOut, String>, hli_obs::ObsShard)>> =
        results.into_iter().map(Some).collect();
    let mut order: Vec<usize> = (0..slots.len()).collect();
    order.sort_by(|&a, &b| rtl.funcs[a].name.cmp(&rtl.funcs[b].name));
    let mut out = rtl.clone();
    let mut total_queries = hli_backend::ddg::QueryStats::default();
    for i in order {
        let (result, shard) = slots[i].take().unwrap();
        hli_obs::commit(shard);
        let fo = result.unwrap_or_else(|e| fail(&e));
        for m in &fo.messages {
            eprintln!("{m}");
        }
        if let Some(d) = &fo.dump {
            print!("{d}");
        }
        total_queries.add(&fo.stats);
        *out.func_mut(&rtl.funcs[i].name).unwrap() = fo.func;
    }

    println!(
        "dependence queries: {} (GCC yes {}, HLI yes {}, combined {})",
        total_queries.total_tests,
        total_queries.gcc_yes,
        total_queries.hli_yes,
        total_queries.combined_yes
    );

    let _exec_span = hli_obs::span("machine.execute");
    let (res, trace) = hli_machine::execute_with_trace(&out)
        .unwrap_or_else(|e| fail(&format!("execution fault: {e}")));
    drop(_exec_span);
    println!(
        "program result: {} ({} dynamic instructions, {} loads, {} stores)",
        res.ret, res.dyn_insns, res.loads, res.stores
    );
    if flags.time {
        // Time on exactly the models the scheduler assumed (the first one
        // supplied its latency table) — no hardcoded config pair.
        for m in &flags.machines {
            let s = m.cycles(&trace);
            let detail: Vec<String> =
                s.detail.iter().map(|(k, v)| format!("{v} {}", k.replace('_', " "))).collect();
            println!("{:<7}: {} cycles ({})", m.name(), s.cycles, detail.join(", "));
        }
    }
}

fn serve(rest: &[String]) {
    let mut cfg = hli_serve::ServeConfig {
        cache_dir: std::path::PathBuf::from(".hlicc-cache"),
        cache_max_bytes: 0,
        jobs: 0,
    };
    let mut socket: Option<std::path::PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache" => {
                cfg.cache_dir =
                    it.next().unwrap_or_else(|| fail("--cache needs a directory")).into();
            }
            "--cache-max-mb" => {
                let mb: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--cache-max-mb needs a size"));
                cfg.cache_max_bytes = mb * 1024 * 1024;
            }
            "--jobs" => {
                cfg.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--jobs needs a worker count"));
            }
            "--socket" => {
                socket = Some(it.next().unwrap_or_else(|| fail("--socket needs a path")).into());
            }
            other => fail(&format!("unknown serve flag `{other}`")),
        }
    }
    let server = hli_serve::Server::new(cfg).unwrap_or_else(|e| fail(&format!("cache: {e}")));
    let result = match socket {
        Some(path) => server.run_unix(&path),
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            server.run(stdin.lock(), &mut stdout).map(|_| ())
        }
    };
    result.unwrap_or_else(|e| fail(&format!("serve: {e}")));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: hlicc front <input.c> [-o out.hli]\n       hlicc back <input.c> <in.hli> [--no-hli --lazy-import --jobs N --machine NAME[,NAME...] --dump-rtl --unroll N --cse --licm --time]\n       hlicc build <input.c> [back-end flags]\n       hlicc serve [--cache DIR --cache-max-mb N --jobs N --socket PATH]\n       (all: --stats [text|json], --trace-out <file.json>, --provenance-out <file.jsonl>)";
    let obs = hli_harness::cli::ObsArgs::extract(&mut args).unwrap_or_else(|e| fail(&e));
    let Some(cmd) = args.first() else { fail(usage) };
    match cmd.as_str() {
        "front" => {
            let input = args.get(1).unwrap_or_else(|| fail(usage));
            let out = match args.get(2).map(String::as_str) {
                Some("-o") => Some(args.get(3).unwrap_or_else(|| fail(usage)).clone()),
                _ => None,
            };
            front(input, out);
        }
        "back" | "build" => {
            let input = args.get(1).unwrap_or_else(|| fail(usage)).clone();
            let (hli_path, rest_from) = if cmd == "back" {
                (args.get(2).unwrap_or_else(|| fail(usage)).clone(), 3)
            } else {
                // build: run the front end into a temp file first.
                let tmp = std::env::temp_dir().join(format!("hlicc-{}.hli", std::process::id()));
                let tmp = tmp.to_string_lossy().into_owned();
                front(&input, Some(tmp.clone()));
                (tmp, 2)
            };
            let rest = &args[rest_from.min(args.len())..];
            let mut flags = BackFlags {
                use_hli: true,
                dump_rtl: false,
                unroll: None,
                cse: false,
                licm: false,
                time: false,
                lazy_import: false,
                jobs: 0,
                machines: hli_harness::default_machines(),
            };
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--no-hli" => flags.use_hli = false,
                    "--lazy-import" => flags.lazy_import = true,
                    "--dump-rtl" => flags.dump_rtl = true,
                    "--cse" => flags.cse = true,
                    "--licm" => flags.licm = true,
                    "--time" => flags.time = true,
                    "--jobs" => {
                        flags.jobs = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| fail("--jobs needs a worker count"));
                    }
                    "--machine" => {
                        let spec =
                            it.next().unwrap_or_else(|| fail("--machine needs a target name"));
                        flags.machines = spec
                            .split(',')
                            .map(|n| {
                                hli_machine::backend_by_name(n).unwrap_or_else(|| {
                                    fail(&format!(
                                        "--machine: unknown target `{n}` (known: {})",
                                        hli_machine::backend_names().join(", ")
                                    ))
                                })
                            })
                            .collect();
                    }
                    "--unroll" => {
                        let n: u32 = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| fail("--unroll needs a factor >= 2"));
                        if n < 2 {
                            fail("--unroll needs a factor >= 2");
                        }
                        flags.unroll = Some(n);
                    }
                    other => fail(&format!("unknown flag `{other}`\n{usage}")),
                }
            }
            back(&input, &hli_path, flags);
        }
        "serve" => serve(&args[1..]),
        _ => fail(usage),
    }
    obs.emit();
}
