//! `faultbench` — seeded fault-injection campaign against the HLI trust
//! boundary.
//!
//! The back-end treats an HLI image as *untrusted input*: decode errors
//! and verifier rejections must quarantine the affected unit onto the
//! pure-GCC conservative path, never panic the compiler and never make an
//! optimization decision the clean image would not have justified. This
//! binary stress-tests that contract at two layers:
//!
//! * **byte level** — seeded bit flips, byte substitutions, truncations
//!   and zeroed windows on the encoded `HLI\x01` / `HLI\x02` / `HLI\x03`
//!   images of every suite benchmark, pushed through the real import +
//!   two-pass scheduling pipeline under `catch_unwind` (the `HLI\x03`
//!   mutants exercise the zero-copy view path: structural validation at
//!   first access, semantic verify on the transiently-materialized
//!   entry);
//! * **table level** — semantic mutations on *decoded* tables (flip an
//!   LCDD entry's direction, drop an alias edge, re-home an item into a
//!   different equivalence class), checking that the verifier rejects
//!   what it can and that the differential executor catches what it
//!   cannot.
//!
//! Hard failures (exit 1), reusing the Table-2 counters as the
//! differential soundness oracle:
//!
//! * any panic reaching the campaign harness;
//! * the GCC-only counters or the GCC-only schedule moving at all — HLI
//!   input must never influence the baseline path;
//! * a mutant that decodes to the *same* tables producing different
//!   stats or a different schedule;
//! * a rejected or quarantined image whose combined counters leave the
//!   `clean.combined ≤ mut.combined ≤ clean.gcc` degradation envelope,
//!   or whose compiled output disagrees with the AST-interpreter oracle;
//! * a v1/v2 byte mutant that decodes, passes the verifier, and either
//!   makes the combined pass *more* aggressive than the clean run or
//!   miscompiles. (Verify-clean `HLI\x03` mutants get the table-level
//!   stance instead: the fixed-word layout turns random byte damage
//!   into well-formed *semantic* mutations no static verifier can
//!   reject, so oracle-detected ones are counted, not failed — see
//!   [`ByteClass::Caught`].)
//!
//! Table-level mutations that stay well-formed are *semantically wrong
//! but syntactically trusted* — no static verifier can reject a
//! may-alias table that omits a true edge, or an item quietly moved to
//! a different (still unique) class. For those the campaign asserts the
//! direction flip never changes scheduling, that any malformed shape a
//! mutation produces (e.g. re-homing the last member empties a class)
//! is quarantined, and it *reports* (rather than fails on) mutants
//! whose effect the differential executor detects: that count
//! demonstrates the oracle actually has teeth.
//!
//! Fully-rejected images (nothing decodes) skip the scheduling step: the
//! pipeline with no HLI at all is the precomputed no-HLI control run,
//! which is validated once per benchmark during setup.
//!
//! `--quarantine-check` instead runs the determinism gate: one
//! multi-function program with one deliberately-invalid unit is compiled
//! at `--jobs 1` and `--jobs N`, and the `--stats json` snapshot and
//! provenance JSONL must be byte-identical, with exactly one unit
//! quarantined.
//!
//! Usage: `faultbench [N] [--seed S] [--table M] [--jobs J]
//! [--quarantine-check] [--stats text|json] [--provenance-out p.jsonl]`
//! (N byte-level mutations, default 10000; M table-level mutations,
//! default N/10).

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use hli_backend::ddg::{DepMode, QueryStats};
use hli_backend::driver::{schedule_program_passes, PassSpec};
use hli_backend::lower::lower_program;
use hli_backend::rtl::RtlProgram;
use hli_core::image::EntryRef;
use hli_core::serialize::{decode_file, encode_file, encode_file_v2, SerializeOpts};
use hli_core::{encode_file_v3, HliFile, HliImage, HliReader, MemberRef, QueryCache};
use hli_frontend::generate_hli;
use hli_lang::compile_to_ast;
use hli_obs::{metrics, provenance, MetricsRegistry, ProvenanceSink};
use hli_suite::rng::XorShift64;
use hli_suite::Scale;

/// Everything precomputed once per benchmark so a campaign iteration
/// only pays for the decode attempt plus (rarely) one schedule + run.
struct Prep {
    name: String,
    unit_names: Vec<String>,
    rtl: RtlProgram,
    clean: HliFile,
    v1: Vec<u8>,
    v2: Vec<u8>,
    v3: Vec<u8>,
    oracle_ret: i64,
    oracle_sum: u64,
    /// Combined-pass stats of the clean image (carries `gcc_yes` too).
    clean_stats: QueryStats,
    clean_gcc_prog: RtlProgram,
    clean_hli_prog: RtlProgram,
}

/// Schedule the two compiler builds (GCC-only, then combined) inline.
fn schedule<'h>(
    rtl: &RtlProgram,
    lookup: &(dyn Fn(&str) -> Option<EntryRef<'h>> + Sync),
) -> (RtlProgram, RtlProgram, QueryStats) {
    let passes = [
        PassSpec { mode: DepMode::GccOnly, caches: None },
        PassSpec { mode: DepMode::Combined, caches: None },
    ];
    let mut out = schedule_program_passes(
        rtl,
        lookup,
        &passes,
        hli_machine::backend_by_name("r4600").unwrap(),
        1,
    )
    .into_iter();
    let (gcc_prog, _) = out.next().expect("GccOnly pass result");
    let (hli_prog, stats) = out.next().expect("Combined pass result");
    (gcc_prog, hli_prog, stats)
}

fn prepare() -> Vec<Prep> {
    hli_suite::all(Scale::tiny())
        .iter()
        .map(|b| {
            let (p, s) = compile_to_ast(&b.source).unwrap_or_else(|e| die(&b.name, &e.to_string()));
            let oracle = hli_lang::interp::run_program(&p, &s)
                .unwrap_or_else(|e| die(&b.name, &e.to_string()));
            let hli = generate_hli(&p, &s);
            if let Some((unit, err)) = hli_core::verify_file(&hli).first() {
                die(&b.name, &format!("clean HLI invalid for `{unit}`: {err}"));
            }
            let opts = SerializeOpts::default();
            let v1 = encode_file(&hli, opts);
            let v2 = encode_file_v2(&hli, opts);
            let v3 = encode_file_v3(&hli, opts);
            let clean = decode_file(&v1, opts).unwrap_or_else(|e| die(&b.name, &e.0));
            let rtl = lower_program(&p, &s);
            let (clean_gcc_prog, clean_hli_prog, clean_stats) =
                schedule(&rtl, &|n| clean.entry(n).map(EntryRef::Owned));

            // The no-HLI control: the path every fully-rejected image
            // degrades to. Validated here once, then byte-level
            // iterations that reject the whole image can skip it.
            let (_, control_prog, control_stats) = schedule(&rtl, &|_| None);
            if control_stats.combined_yes != control_stats.gcc_yes
                || control_stats.gcc_yes != clean_stats.gcc_yes
            {
                die(&b.name, "no-HLI control run does not collapse onto the GCC counters");
            }
            let run = hli_machine::execute(&control_prog)
                .unwrap_or_else(|e| die(&b.name, &e.to_string()));
            if run.ret != oracle.ret || run.global_checksum != oracle.global_checksum {
                die(&b.name, "no-HLI control run disagrees with the interpreter");
            }

            Prep {
                name: b.name.clone(),
                unit_names: clean.entries.iter().map(|e| e.unit_name.clone()).collect(),
                rtl,
                clean,
                v1,
                v2,
                v3,
                oracle_ret: oracle.ret,
                oracle_sum: oracle.global_checksum,
                clean_stats,
                clean_gcc_prog,
                clean_hli_prog,
            }
        })
        .collect()
}

fn die(bench: &str, msg: &str) -> ! {
    eprintln!("faultbench: setup failed for {bench}: {msg}");
    std::process::exit(2)
}

/// Per-iteration rng: one stream per iteration index so outcomes do not
/// depend on how the pool distributes iterations over workers.
fn iter_rng(seed: u64, k: u64) -> XorShift64 {
    XorShift64::new(seed ^ k.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1))
}

// ---------------------------------------------------------------------
// Byte-level campaign
// ---------------------------------------------------------------------

/// How one byte-level mutant fared. `Err` is a hard soundness failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ByteClass {
    /// The image failed to decode at all (or every unit of it did).
    Rejected,
    /// Some units decoded, at least one was dropped or quarantined.
    Quarantined,
    /// Decoded to tables equal to the clean ones; stats matched.
    Identical,
    /// Decoded to *different* tables that still pass the verifier.
    Variant,
    /// A verify-clean `HLI\x03` variant whose compiled output the
    /// differential executor caught. The fixed-word v3 layout lets a
    /// random byte flip land as a *semantic* table mutation (one field
    /// cleanly rewritten, everything still well-formed) — the same
    /// wrong-but-trusted class the table-level campaign reports via
    /// [`TableClass::Detected`] rather than hard-fails, because no
    /// static verifier can reject it. For the variable-length v1/v2
    /// encodings such landings are effectively impossible, so there a
    /// verify-clean miscompile stays a hard failure (a verifier gap).
    Caught,
}

fn mutate_bytes(bytes: &mut Vec<u8>, rng: &mut XorShift64) {
    let len = bytes.len() as u64;
    match rng.next_range(4) {
        0 => {
            let pos = rng.next_range(len) as usize;
            bytes[pos] ^= 1 << rng.next_range(8);
        }
        1 => {
            let pos = rng.next_range(len) as usize;
            bytes[pos] = rng.next_u64() as u8;
        }
        2 => bytes.truncate(rng.next_range(len) as usize),
        _ => {
            let pos = rng.next_range(len) as usize;
            let end = (pos + 4).min(bytes.len());
            bytes[pos..end].fill(0);
        }
    }
}

/// Which encoded format a byte-level iteration mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fmt {
    V1,
    V2,
    V3,
}

fn byte_iteration(preps: &[Prep], seed: u64, k: u64) -> Result<ByteClass, String> {
    let mut rng = iter_rng(seed, k);
    let p = &preps[(k as usize) % preps.len()];
    let fmt = match rng.next_range(3) {
        0 => Fmt::V1,
        1 => Fmt::V2,
        _ => Fmt::V3,
    };
    let mut bytes = match fmt {
        Fmt::V1 => p.v1.clone(),
        Fmt::V2 => p.v2.clone(),
        Fmt::V3 => p.v3.clone(),
    };
    mutate_bytes(&mut bytes, &mut rng);

    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_byte_mutant(p, bytes, fmt)));
    match outcome {
        Ok(r) => r.map_err(|e| format!("{} k={k}: {e}", p.name)),
        Err(_) => Err(format!("{} k={k}: PANIC escaped the import/compile pipeline", p.name)),
    }
}

/// A mutated image after the decode attempt: the whole v1 file, the lazy
/// v2 reader decoding units on first request, or the zero-copy v3 image
/// serving structurally-validated views of the mutated bytes.
enum Img {
    Eager(HliFile),
    Lazy(HliReader),
    ZeroCopy(HliImage),
}

fn run_byte_mutant(p: &Prep, bytes: Vec<u8>, fmt: Fmt) -> Result<ByteClass, String> {
    let opts = SerializeOpts::default();
    let reg = Arc::new(MetricsRegistry::new());
    let _m = metrics::scoped(reg.clone());

    // Decode: eager whole-file for v1, per-unit through the reader for
    // v2, borrowed views over the image for v3. Units that fail to
    // decode (or fail the v3 structural validation) become `None` in the
    // lookup, exactly as `hlicc` treats them.
    let img = match fmt {
        Fmt::V1 => match decode_file(&bytes, opts) {
            Ok(f) => Img::Eager(f),
            Err(_) => return Ok(ByteClass::Rejected),
        },
        Fmt::V2 => match HliReader::open(bytes, opts) {
            Ok(r) => Img::Lazy(r),
            Err(_) => return Ok(ByteClass::Rejected),
        },
        Fmt::V3 => match HliImage::open(bytes, opts) {
            Ok(i) => Img::ZeroCopy(i),
            Err(_) => return Ok(ByteClass::Rejected),
        },
    };
    let lookup = |n: &str| -> Option<EntryRef<'_>> {
        match &img {
            Img::Eager(f) => f.entry(n).map(EntryRef::Owned),
            Img::Lazy(r) => r.get(n).ok().flatten().map(EntryRef::Owned),
            Img::ZeroCopy(i) => i.get_ref(n).ok().flatten(),
        }
    };

    let dropped = p.unit_names.iter().filter(|n| lookup(n).is_none()).count();
    if dropped == p.unit_names.len() {
        // Nothing decoded: the pipeline degenerates to the no-HLI
        // control run validated during setup.
        return Ok(ByteClass::Rejected);
    }
    let identical_content = dropped == 0
        && p.clean
            .entries
            .iter()
            .all(|clean| lookup(&clean.unit_name).is_some_and(|e| e.same_tables(clean)));

    let (gcc_prog, hli_prog, stats) = schedule(&p.rtl, &lookup);
    let quarantined = reg.snapshot().counter("backend.quarantine.units");

    // The GCC-only path must be bit-for-bit blind to HLI input.
    if stats.total_tests != p.clean_stats.total_tests || stats.gcc_yes != p.clean_stats.gcc_yes {
        return Err(format!(
            "GCC counters moved: {}/{} vs clean {}/{}",
            stats.total_tests, stats.gcc_yes, p.clean_stats.total_tests, p.clean_stats.gcc_yes
        ));
    }
    if gcc_prog != p.clean_gcc_prog {
        return Err("GccOnly schedule changed under an HLI mutation".into());
    }

    if identical_content {
        if stats != p.clean_stats || hli_prog != p.clean_hli_prog {
            return Err(format!(
                "identical tables produced different decisions: {stats:?} vs {:?}",
                p.clean_stats
            ));
        }
        return Ok(ByteClass::Identical);
    }

    let exec_matches = || -> Result<bool, String> {
        let run = hli_machine::execute(&hli_prog).map_err(|e| format!("mutant build: {e}"))?;
        Ok(run.ret == p.oracle_ret && run.global_checksum == p.oracle_sum)
    };

    if quarantined > 0 || dropped > 0 {
        // Degradation envelope: losing units can only move the combined
        // counters up toward the GCC baseline, never below the clean run.
        if stats.combined_yes < p.clean_stats.combined_yes || stats.combined_yes > stats.gcc_yes {
            return Err(format!(
                "quarantined image left the degradation envelope: combined {} not in [{}, {}]",
                stats.combined_yes, p.clean_stats.combined_yes, stats.gcc_yes
            ));
        }
        if !exec_matches()? {
            return Err("quarantined image miscompiled".into());
        }
        return Ok(ByteClass::Quarantined);
    }

    // A verify-clean variant. For v1/v2 the strictest stance holds — it
    // must not be more aggressive than the clean image and must not
    // miscompile; a failure means the verifier has a gap worth closing.
    // For v3 the fixed-word layout makes byte damage land as well-formed
    // semantic mutations (see [`ByteClass::Caught`]), so the campaign
    // takes the table-level stance: aggressive-but-validated variants
    // are reported as variants, oracle-detected ones as `Caught`.
    if fmt == Fmt::V3 {
        return Ok(if exec_matches()? {
            ByteClass::Variant
        } else {
            ByteClass::Caught
        });
    }
    if stats.combined_yes < p.clean_stats.combined_yes {
        return Err(format!(
            "verify-clean byte mutant went aggressive: combined {} < clean {}",
            stats.combined_yes, p.clean_stats.combined_yes
        ));
    }
    if !exec_matches()? {
        return Err("verify-clean byte mutant miscompiled".into());
    }
    Ok(ByteClass::Variant)
}

// ---------------------------------------------------------------------
// Table-level campaign
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableClass {
    /// The verifier rejected the mutant; the unit was quarantined.
    Quarantined,
    /// Well-formed mutant whose decisions matched the clean run.
    Identical,
    /// Well-formed mutant; combined counters moved toward the baseline.
    Degraded,
    /// Well-formed mutant made the combined pass more aggressive and the
    /// differential executor still agreed with the oracle.
    Aggressive,
    /// Aggressive *and* caught by the differential executor: wrong
    /// trusted input the dynamic oracle detects.
    Detected,
}

/// One semantic mutation applied to a decoded file. Returns the kind
/// label, or `None` when the file offers no site for any kind (cannot
/// happen on the real suite).
fn mutate_tables(file: &mut HliFile, rng: &mut XorShift64) -> Option<&'static str> {
    // Collect candidate sites per mutation kind: (entry, region, index).
    let mut lcdd = Vec::new();
    let mut alias = Vec::new();
    let mut rehome = Vec::new();
    for (ei, e) in file.entries.iter().enumerate() {
        for (ri, r) in e.regions.iter().enumerate() {
            for (ti, t) in r.lcdd_table.iter().enumerate() {
                if t.src != t.dst {
                    lcdd.push((ei, ri, ti));
                }
            }
            for (ti, _) in r.alias_table.iter().enumerate() {
                alias.push((ei, ri, ti));
            }
            if r.equiv_classes.len() >= 2 {
                for (ci, c) in r.equiv_classes.iter().enumerate() {
                    for (mi, m) in c.members.iter().enumerate() {
                        if matches!(m, MemberRef::Item(_)) {
                            rehome.push((ei, ri, ci, mi));
                        }
                    }
                }
            }
        }
    }
    let mut kinds: Vec<&'static str> = Vec::new();
    if !lcdd.is_empty() {
        kinds.push("flip-lcdd");
    }
    if !alias.is_empty() {
        kinds.push("drop-alias");
    }
    if !rehome.is_empty() {
        kinds.push("rehome-item");
    }
    if kinds.is_empty() {
        return None;
    }
    let kind = *rng.choose(&kinds);
    match kind {
        "flip-lcdd" => {
            let &(ei, ri, ti) = rng.choose(&lcdd);
            let t = &mut file.entries[ei].regions[ri].lcdd_table[ti];
            std::mem::swap(&mut t.src, &mut t.dst);
        }
        "drop-alias" => {
            let &(ei, ri, ti) = rng.choose(&alias);
            file.entries[ei].regions[ri].alias_table.remove(ti);
        }
        _ => {
            let &(ei, ri, ci, mi) = rng.choose(&rehome);
            let nclasses = file.entries[ei].regions[ri].equiv_classes.len();
            let other = (ci + 1 + rng.next_range(nclasses as u64 - 1) as usize) % nclasses;
            let m = file.entries[ei].regions[ri].equiv_classes[ci].members.remove(mi);
            file.entries[ei].regions[ri].equiv_classes[other].members.push(m);
        }
    }
    Some(kind)
}

fn table_iteration(preps: &[Prep], seed: u64, k: u64) -> Result<TableClass, String> {
    let mut rng = iter_rng(seed, !k);
    let p = &preps[(k as usize) % preps.len()];
    let mut file = p.clean.clone();
    let Some(kind) = mutate_tables(&mut file, &mut rng) else {
        return Ok(TableClass::Identical);
    };

    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_table_mutant(p, &file, kind)));
    match outcome {
        Ok(r) => r.map_err(|e| format!("{} k={k} {kind}: {e}", p.name)),
        Err(_) => Err(format!("{} k={k} {kind}: PANIC escaped the compile pipeline", p.name)),
    }
}

fn run_table_mutant(p: &Prep, file: &HliFile, kind: &str) -> Result<TableClass, String> {
    let reg = Arc::new(MetricsRegistry::new());
    let _m = metrics::scoped(reg.clone());
    let (gcc_prog, hli_prog, stats) = schedule(&p.rtl, &|n| file.entry(n).map(EntryRef::Owned));
    let quarantined = reg.snapshot().counter("backend.quarantine.units");

    if stats.total_tests != p.clean_stats.total_tests || stats.gcc_yes != p.clean_stats.gcc_yes {
        return Err("GCC counters moved under a table mutation".into());
    }
    if gcc_prog != p.clean_gcc_prog {
        return Err("GccOnly schedule changed under a table mutation".into());
    }

    if quarantined > 0 {
        // Re-homing the last member of a class leaves the class empty —
        // a shape violation the verifier must catch. The other kinds
        // always stay well-formed; quarantine would mean the verifier
        // over-rejects legal may-information.
        if kind != "rehome-item" {
            return Err("well-formed mutation was quarantined".into());
        }
        if stats.combined_yes < p.clean_stats.combined_yes || stats.combined_yes > stats.gcc_yes {
            return Err("quarantined mutant left the degradation envelope".into());
        }
        return Ok(TableClass::Quarantined);
    }

    if stats == p.clean_stats && hli_prog == p.clean_hli_prog {
        return Ok(TableClass::Identical);
    }
    if kind == "flip-lcdd" {
        // The `>`-normalized direction is not consulted by the pair
        // scheduler; a flip altering decisions means LCDD leaked into a
        // query it must not answer.
        return Err("LCDD direction flip changed scheduling decisions".into());
    }
    if stats.combined_yes >= p.clean_stats.combined_yes {
        return Ok(TableClass::Degraded);
    }
    // A dropped alias edge or re-homed item made the pass more
    // aggressive: semantically wrong but well-formed trusted input that
    // no static verifier can reject. The differential executor is the
    // only oracle left.
    let run = hli_machine::execute(&hli_prog).map_err(|e| format!("mutant build: {e}"))?;
    if run.ret == p.oracle_ret && run.global_checksum == p.oracle_sum {
        Ok(TableClass::Aggressive)
    } else {
        Ok(TableClass::Detected)
    }
}

// ---------------------------------------------------------------------
// Quarantine determinism gate
// ---------------------------------------------------------------------

const QUARANTINE_SRC: &str = "int a[64]; int b[64]; int g;\n\
    void f1(int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + g; }\n\
    void f2(int n) { int i; for (i = 0; i < n; i++) b[i] = a[i] * 2; }\n\
    void f3(int n) { int i; for (i = 0; i < n; i++) g += a[i]; }\n\
    int main() { f1(32); f2(32); f3(32); return g; }";

/// Compile `QUARANTINE_SRC` with `f2`'s unit made invalid, at `jobs`
/// workers, returning the stats JSON and provenance JSONL.
fn run_quarantined(jobs: usize) -> (String, String) {
    let (p, s) = compile_to_ast(QUARANTINE_SRC).unwrap();
    let mut hli = generate_hli(&p, &s);
    let bad = hli.entry_mut("f2").expect("f2 unit");
    let (src, dst) = (bad.regions[0].equiv_classes[0].id, bad.regions[0].equiv_classes[1].id);
    bad.regions[0].lcdd_table.push(hli_core::LcddEntry {
        src,
        dst,
        kind: hli_core::DepKind::Maybe,
        distance: hli_core::Distance::Unknown,
    });
    assert!(
        !hli.entry("f2").unwrap().verify().is_empty(),
        "injected corruption undetectable"
    );
    let prog = lower_program(&p, &s);
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let ids = Arc::new(AtomicU64::new(1));
    {
        let _m = metrics::scoped(reg.clone());
        let _s = provenance::scoped(sink.clone());
        let _i = provenance::scoped_ids(ids);
        let caches: HashMap<String, QueryCache> =
            prog.funcs.iter().map(|f| (f.name.clone(), QueryCache::new())).collect();
        let passes = [
            PassSpec { mode: DepMode::GccOnly, caches: Some(&caches) },
            PassSpec { mode: DepMode::Combined, caches: Some(&caches) },
        ];
        schedule_program_passes(
            &prog,
            &|n| hli.entry(n).map(EntryRef::Owned),
            &passes,
            hli_machine::backend_by_name("r4600").unwrap(),
            jobs,
        );
    }
    (reg.snapshot().to_json(), provenance::to_jsonl(&sink.drain()))
}

fn quarantine_check(jobs_hi: usize) -> bool {
    let (seq_json, seq_prov) = run_quarantined(1);
    let (par_json, par_prov) = run_quarantined(jobs_hi);
    let mut ok = true;
    if !seq_json.contains("\"backend.quarantine.units\": 1") {
        eprintln!("FAIL: injected-invalid unit was not quarantined exactly once:\n{seq_json}");
        ok = false;
    }
    if !seq_prov.contains("quarantine.unit") || !seq_prov.contains("\"function\": \"f2\"") {
        eprintln!("FAIL: no quarantine provenance record names f2:\n{seq_prov}");
        ok = false;
    }
    if seq_json != par_json {
        eprintln!("FAIL: --stats json differs between --jobs 1 and --jobs {jobs_hi}");
        ok = false;
    }
    if seq_prov != par_prov {
        eprintln!("FAIL: provenance JSONL differs between --jobs 1 and --jobs {jobs_hi}");
        ok = false;
    }
    println!(
        "quarantine-check: 1 unit quarantined, stats json {} B, provenance {} record(s), \
         --jobs 1 vs --jobs {jobs_hi}: {}",
        seq_json.len(),
        seq_prov.lines().count(),
        if ok { "byte-identical" } else { "DIVERGED" }
    );
    ok
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = hli_harness::cli::ObsArgs::extract(&mut args).unwrap_or_else(|e| usage(&e));
    let jobs = hli_harness::report::extract_jobs(&mut args).unwrap_or_else(|e| usage(&e));
    let mut n: u64 = 10_000;
    let mut table_n: Option<u64> = None;
    let mut seed: u64 = 0xC0FFEE;
    let mut q_check = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--table" => {
                table_n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--table needs an integer")),
                );
            }
            "--quarantine-check" => q_check = true,
            _ if a.starts_with("--") => usage(&format!("unknown flag `{a}`")),
            _ => n = a.parse().unwrap_or_else(|_| usage("N must be an integer")),
        }
    }

    if q_check {
        let ok = quarantine_check(if jobs == 0 { 8 } else { jobs.max(2) });
        obs.emit();
        std::process::exit(if ok { 0 } else { 1 });
    }

    let table_n = table_n.unwrap_or(n / 10);
    eprintln!("faultbench: preparing suite (tiny scale), seed {seed:#x}...");
    let preps = prepare();
    eprintln!(
        "faultbench: {} benchmarks; {n} byte-level + {table_n} table-level mutations...",
        preps.len()
    );

    let mut failures: Vec<String> = Vec::new();

    let ks: Vec<u64> = (0..n).collect();
    let (byte_out, byte_wall) =
        hli_obs::timing::time(|| hli_harness::par_map(&ks, |&k| byte_iteration(&preps, seed, k)));
    let mut bc = [0u64; 5];
    for o in byte_out {
        match o {
            Ok(ByteClass::Rejected) => bc[0] += 1,
            Ok(ByteClass::Quarantined) => bc[1] += 1,
            Ok(ByteClass::Identical) => bc[2] += 1,
            Ok(ByteClass::Variant) => bc[3] += 1,
            Ok(ByteClass::Caught) => bc[4] += 1,
            Err(e) => failures.push(e),
        }
    }
    println!(
        "byte-level ({n} mutations): {} rejected, {} quarantined, {} identical, \
         {} verify-clean variant(s), {} caught by differential executor   [{}]",
        bc[0],
        bc[1],
        bc[2],
        bc[3],
        bc[4],
        hli_obs::timing::fmt_ms(byte_wall)
    );

    let tks: Vec<u64> = (0..table_n).collect();
    let (table_out, table_wall) =
        hli_obs::timing::time(|| hli_harness::par_map(&tks, |&k| table_iteration(&preps, seed, k)));
    let mut tc = [0u64; 5];
    for o in table_out {
        match o {
            Ok(TableClass::Quarantined) => tc[0] += 1,
            Ok(TableClass::Identical) => tc[1] += 1,
            Ok(TableClass::Degraded) => tc[2] += 1,
            Ok(TableClass::Aggressive) => tc[3] += 1,
            Ok(TableClass::Detected) => tc[4] += 1,
            Err(e) => failures.push(e),
        }
    }
    println!(
        "table-level ({table_n} mutations): {} quarantined, {} identical, {} degraded, \
         {} aggressive-undetected, {} caught by differential executor   [{}]",
        tc[0],
        tc[1],
        tc[2],
        tc[3],
        tc[4],
        hli_obs::timing::fmt_ms(table_wall)
    );

    for f in failures.iter().take(10) {
        eprintln!("FAIL: {f}");
    }
    if failures.len() > 10 {
        eprintln!("... and {} more failure(s)", failures.len() - 10);
    }
    println!(
        "faultbench: {} hard failure(s), 0 panics escaped: {}",
        failures.len(),
        if failures.is_empty() {
            "PASS"
        } else {
            "FAILED"
        }
    );
    obs.emit();
    std::process::exit(if failures.is_empty() { 0 } else { 1 });
}

fn usage(msg: &str) -> ! {
    eprintln!("faultbench: {msg}");
    eprintln!(
        "usage: faultbench [N] [--seed S] [--table M] [--jobs J] [--quarantine-check] \
         [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]"
    );
    std::process::exit(2)
}
