//! `servebench` — the edit-recompile workload for `hlicc serve`
//! (docs/SERVE.md, "Benchmarking"; regeneration guide in EXPERIMENTS.md).
//!
//! Epoch 0 submits the pristine generated corpus as one compile batch;
//! every later epoch applies a line-count-preserving one-constant edit
//! (`hli_suite::corpus::edit_program`) to one function of one program and
//! resubmits the *whole* corpus — the IDE "rebuild all after an edit"
//! shape. Steady-state batches therefore miss exactly once, so the hit
//! rate is (N−1)/N by construction, where N = programs × (funcs + 1).
//!
//! ```text
//! servebench [--programs P] [--funcs F] [--epochs E] [--seed S]
//!            [--jobs N] [--cache DIR] [--cache-max-mb M]
//!            [--keep-cache] [--check]
//! ```
//!
//! `--check` additionally runs the determinism gate on fresh scratch
//! caches (exit 1 on violation):
//!
//! * **jobs invariance** — the workload at `--jobs 1` and `--jobs 8`
//!   produces byte-identical response lines, metrics snapshots
//!   (`serve.*` included) and provenance JSONL;
//! * **cold-vs-warm equivalence** — replaying the workload on the
//!   populated cache produces byte-identical provenance JSONL and
//!   metrics modulo the `serve.*` namespace, and response lines that
//!   differ only in `"source"`/hit counters;
//! * **steady-state hit rate ≥ 80%**.

use hli_obs::provenance::ProvenanceSink;
use hli_obs::{metrics, provenance, MetricsRegistry, MetricsSnapshot};
use hli_serve::{CompileFlags, ProgramReq, Request, Response, ServeConfig, Server};
use hli_suite::corpus::{edit_program, generate, CorpusSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("servebench: {msg}");
    std::process::exit(1)
}

struct Args {
    programs: usize,
    funcs: usize,
    epochs: usize,
    seed: u64,
    jobs: usize,
    cache: Option<PathBuf>,
    cache_max_bytes: u64,
    keep_cache: bool,
    check: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut out = Args {
        programs: 3,
        funcs: 8,
        epochs: 6,
        seed: 0xC0FFEE,
        jobs: 0,
        cache: None,
        cache_max_bytes: 0,
        keep_cache: false,
        check: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| {
                    let v = v
                        .strip_prefix("0x")
                        .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok());
                    v
                })
                .unwrap_or_else(|| fail(&format!("{what} needs a number")))
        };
        match a.as_str() {
            "--programs" => out.programs = num("--programs") as usize,
            "--funcs" => out.funcs = num("--funcs") as usize,
            "--epochs" => out.epochs = num("--epochs") as usize,
            "--seed" => out.seed = num("--seed"),
            "--jobs" => out.jobs = num("--jobs") as usize,
            "--cache-max-mb" => out.cache_max_bytes = num("--cache-max-mb") * 1024 * 1024,
            "--cache" => {
                out.cache =
                    Some(it.next().unwrap_or_else(|| fail("--cache needs a directory")).into());
            }
            "--keep-cache" => out.keep_cache = true,
            "--check" => out.check = true,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if out.epochs == 0 {
        fail("--epochs must be at least 1");
    }
    out
}

/// Build the per-epoch compile request lines. Edits accumulate
/// (latest-wins per function via summed deltas), and every epoch
/// resubmits the whole corpus.
fn build_workload(args: &Args) -> Vec<String> {
    let spec = CorpusSpec {
        programs: args.programs,
        funcs: args.funcs,
        seed: args.seed,
        ..Default::default()
    };
    let pristine: Vec<(String, String)> =
        generate(&spec).into_iter().map(|b| (b.name, b.source)).collect();
    let mut edits: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut lines = Vec::with_capacity(args.epochs);
    for epoch in 0..args.epochs {
        if epoch > 0 {
            let p = (epoch - 1) % pristine.len();
            let k = ((epoch - 1) / pristine.len()) % args.funcs.max(1);
            *edits.entry((p, k)).or_insert(0) += 10;
        }
        let programs: Vec<ProgramReq> = pristine
            .iter()
            .enumerate()
            .map(|(pi, (name, source))| {
                let mut src = source.clone();
                for (&(p, k), &delta) in &edits {
                    if p == pi {
                        src = edit_program(&src, k, delta)
                            .unwrap_or_else(|| fail(&format!("cannot edit f{k} of {name}")));
                    }
                }
                ProgramReq {
                    name: name.clone(),
                    source: src,
                    flags: CompileFlags::default(),
                }
            })
            .collect();
        lines.push(Request::Compile { id: epoch as u64, programs }.to_line());
    }
    lines
}

struct RunOut {
    responses: Vec<String>,
    /// Per-epoch `(hits, misses)`.
    epochs: Vec<(u64, u64)>,
    snapshot: MetricsSnapshot,
    jsonl: String,
}

fn epoch_outcome(line: &str) -> (u64, u64) {
    match Response::parse(line) {
        Ok(Response::Compile { results, hits, misses, .. }) => {
            for r in &results {
                if let Err(e) = &r.outcome {
                    fail(&format!("program {} failed: {e}", r.program));
                }
            }
            (hits, misses)
        }
        other => fail(&format!("unexpected response: {other:?}\n{line}")),
    }
}

/// Run the workload under fully scoped observability (the determinism
/// tests' `run_at` pattern), so two runs are byte-comparable.
fn run_scoped(cache_dir: &Path, max_bytes: u64, jobs: usize, lines: &[String]) -> RunOut {
    let reg = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(ProvenanceSink::new());
    sink.set_enabled(true);
    let _m = metrics::scoped(reg.clone());
    let _s = provenance::scoped(sink.clone());
    let _i = provenance::scoped_ids(Arc::new(AtomicU64::new(1)));
    let server = Server::new(ServeConfig {
        cache_dir: cache_dir.to_path_buf(),
        cache_max_bytes: max_bytes,
        jobs,
    })
    .unwrap_or_else(|e| fail(&format!("cache {}: {e}", cache_dir.display())));
    let responses: Vec<String> = lines.iter().map(|l| server.handle_line(l).0).collect();
    let epochs = responses.iter().map(|r| epoch_outcome(r)).collect();
    RunOut {
        epochs,
        responses,
        snapshot: reg.snapshot(),
        jsonl: provenance::to_jsonl(&sink.drain()),
    }
}

/// Steady-state hit rate: epochs after the cold first one.
fn steady_rate(epochs: &[(u64, u64)]) -> (u64, u64) {
    let (mut hits, mut total) = (0, 0);
    for &(h, m) in &epochs[1..] {
        hits += h;
        total += h + m;
    }
    (hits, total)
}

/// Drop the `serve.*` namespace — the one namespace allowed to differ
/// between a cold and a warm run (its *job* is to describe the cache).
fn strip_serve(snap: &MetricsSnapshot) -> String {
    let mut s = snap.clone();
    s.counters.retain(|k, _| !k.starts_with("serve."));
    s.gauges.retain(|k, _| !k.starts_with("serve."));
    s.histograms.retain(|k, _| !k.starts_with("serve."));
    s.to_json()
}

/// Canonical response line with the cache markers zeroed, for
/// cold-vs-warm comparison.
fn neutral(line: &str) -> String {
    let mut r = Response::parse(line).unwrap_or_else(|e| fail(&e));
    if let Response::Compile { results, hits, misses, .. } = &mut r {
        (*hits, *misses) = (0, 0);
        for pr in results.iter_mut() {
            if let Ok(funcs) = &mut pr.outcome {
                for f in funcs {
                    f.cached = false;
                }
            }
        }
    }
    r.to_line()
}

fn check(args: &Args, lines: &[String]) -> bool {
    let scratch = std::env::temp_dir().join(format!("servebench-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let d1 = scratch.join("j1");
    let d8 = scratch.join("j8");
    let mut ok = true;
    let mut gate = |name: &str, pass: bool, detail: String| {
        let verdict = if pass {
            "ok".to_string()
        } else {
            format!("FAIL ({detail})")
        };
        println!("check: {name} ... {verdict}");
        ok &= pass;
    };

    let a = run_scoped(&d1, 0, 1, lines);
    let b = run_scoped(&d8, 0, 8, lines);
    gate(
        "jobs-1-vs-8 response lines byte-identical",
        a.responses == b.responses,
        "response payloads differ between job counts".into(),
    );
    gate(
        "jobs-1-vs-8 metrics byte-identical (serve.* included)",
        a.snapshot.to_json() == b.snapshot.to_json(),
        "metrics snapshots differ between job counts".into(),
    );
    gate(
        "jobs-1-vs-8 provenance JSONL byte-identical",
        a.jsonl == b.jsonl,
        "provenance records differ between job counts".into(),
    );

    // Warm replay on the populated jobs-1 cache: everything hits.
    let c = run_scoped(&d1, 0, 1, lines);
    let warm_misses: u64 = c.epochs.iter().map(|&(_, m)| m).sum();
    gate(
        "warm replay is all hits",
        warm_misses == 0,
        format!("{warm_misses} misses"),
    );
    gate(
        "cold-vs-warm responses identical modulo cache markers",
        a.responses
            .iter()
            .map(|l| neutral(l))
            .eq(c.responses.iter().map(|l| neutral(l))),
        "cached answers differ from cold ones".into(),
    );
    gate(
        "cold-vs-warm metrics identical outside serve.*",
        strip_serve(&a.snapshot) == strip_serve(&c.snapshot),
        "compile metrics depend on cache state".into(),
    );
    gate(
        "cold-vs-warm provenance JSONL byte-identical",
        a.jsonl == c.jsonl,
        "provenance depends on cache state".into(),
    );

    let (hits, total) = steady_rate(&a.epochs);
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    gate(
        "steady-state hit rate >= 80%",
        args.epochs >= 2 && rate >= 0.8,
        format!("{hits}/{total} = {:.1}%", rate * 100.0),
    );
    println!(
        "servebench check: {} (steady-state hit rate {:.1}%, {hits}/{total})",
        if ok { "PASS" } else { "FAIL" },
        rate * 100.0
    );
    let _ = std::fs::remove_dir_all(&scratch);
    ok
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = hli_harness::cli::ObsArgs::extract(&mut args).unwrap_or_else(|e| fail(&e));
    let args = parse_args(&args);
    let lines = build_workload(&args);

    // Report run: global observability (so --stats/--provenance-out see
    // it), user-chosen or throwaway cache.
    let (cache_dir, ephemeral) = match &args.cache {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("servebench-{}", std::process::id())),
            !args.keep_cache,
        ),
    };
    let server = Server::new(ServeConfig {
        cache_dir: cache_dir.clone(),
        cache_max_bytes: args.cache_max_bytes,
        jobs: args.jobs,
    })
    .unwrap_or_else(|e| fail(&format!("cache {}: {e}", cache_dir.display())));
    println!(
        "servebench: {} program(s) x {} function(s) (+main), {} epoch(s), cache {}",
        args.programs,
        args.funcs,
        args.epochs,
        cache_dir.display()
    );
    let t0 = Instant::now();
    let mut epochs = Vec::with_capacity(args.epochs);
    for (epoch, line) in lines.iter().enumerate() {
        let t = Instant::now();
        let (resp, _) = server.handle_line(line);
        let (h, m) = epoch_outcome(&resp);
        epochs.push((h, m));
        println!(
            "epoch {epoch:>3}: {m:>4} miss, {h:>4} hit, {:>8.2} ms{}",
            t.elapsed().as_secs_f64() * 1e3,
            if epoch == 0 { "  (cold)" } else { "" }
        );
    }
    let total_funcs: u64 = epochs.iter().map(|&(h, m)| h + m).sum();
    let secs = t0.elapsed().as_secs_f64();
    let (hits, steady_total) = steady_rate(&epochs);
    if steady_total > 0 {
        println!(
            "steady-state hit rate: {:.1}% ({hits}/{steady_total})",
            100.0 * hits as f64 / steady_total as f64
        );
    }
    println!(
        "throughput: {:.0} functions/s ({total_funcs} over {secs:.2}s)",
        total_funcs as f64 / secs
    );
    if ephemeral {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    let ok = !args.check || check(&args, &lines);
    obs.emit();
    if !ok {
        std::process::exit(1);
    }
}
