//! `importbench` — eager-vs-lazy import, cold-vs-shared query-cache and
//! sequential-vs-parallel driver comparison over the whole suite.
//!
//! Runs the measurement pipeline over a configuration grid — the four
//! {eager, lazy} × {per-pass, shared} cache configurations on one worker,
//! then the two shared-cache configurations again on `--jobs N` workers
//! (default: all CPUs) — and prints, for each configuration, the wall
//! time, the bytes the decoder actually consumed
//! (`hli.deserialize.bytes`), the units the v2 reader decoded, and the
//! query-cache hit/miss/invalidate counters.
//!
//! The run doubles as a self-check and exits 1 if any of the claims the
//! configurations exist to demonstrate fails to hold:
//!
//! * lazy import must deserialize strictly fewer bytes than eager;
//! * shared caches must produce hits (the second scheduling pass re-asks
//!   what the first already asked);
//! * every configuration — including the multi-threaded ones — must
//!   report identical Table-2 query counters: caching, laziness and
//!   parallelism change cost, never answers.
//!
//! The lazy/shared speedup at `--jobs N` over one worker is printed; it
//! is reported rather than hard-checked because wall-clock ratios on a
//! loaded or single-core CI machine are not a soundness property.
//!
//! Usage: `cargo run --release -p hli-harness --bin importbench [n iters]
//! [--jobs N] [--stats text|json] [--trace-out t.json]
//! [--provenance-out p.jsonl]`

use hli_harness::report::{bench_args, collect_suite_jobs, merged_metrics, total_query_stats};
use hli_harness::ImportConfig;

fn main() {
    let (scale, obs, _, jobs) = bench_args("importbench");
    let par = hli_pool::resolve_jobs(jobs).max(2);
    let eager_shared = ImportConfig { lazy: false, shared_cache: true };
    let lazy_shared = ImportConfig { lazy: true, shared_cache: true };
    let configs = [
        (
            "eager, per-pass caches",
            ImportConfig { lazy: false, shared_cache: false },
            1,
        ),
        ("eager, shared caches", eager_shared, 1),
        (
            "lazy,  per-pass caches",
            ImportConfig { lazy: true, shared_cache: false },
            1,
        ),
        ("lazy,  shared caches", lazy_shared, 1),
        ("eager, shared caches", eager_shared, par),
        ("lazy,  shared caches", lazy_shared, par),
    ];

    eprintln!(
        "running {} suite passes at scale n={} iters={} (parallel rows: {par} workers)...",
        configs.len(),
        scale.n,
        scale.iters
    );
    println!(
        "{:<24} {:>7} {:>10} {:>12} {:>9} {:>9} {:>9} {:>11}",
        "Configuration", "threads", "wall", "deser (B)", "units", "hits", "misses", "invalidated"
    );
    println!("{}", "-".repeat(96));

    let mut rows = Vec::new();
    for (label, cfg, row_jobs) in configs {
        let (reports, wall) = hli_obs::timing::time(|| collect_suite_jobs(scale, cfg, row_jobs));
        let reports = reports.unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let m = merged_metrics(&reports);
        let stats = total_query_stats(&reports);
        println!(
            "{:<24} {:>7} {:>10} {:>12} {:>9} {:>9} {:>9} {:>11}",
            label,
            row_jobs,
            hli_obs::timing::fmt_ms(wall),
            m.counter("hli.deserialize.bytes"),
            m.counter("hli.reader.units_decoded"),
            m.counter("backend.query_cache.hit"),
            m.counter("backend.query_cache.miss"),
            m.counter("backend.query_cache.invalidate"),
        );
        rows.push((label, cfg, row_jobs, wall, m, stats));
    }

    let mut ok = true;
    let eager_bytes = rows
        .iter()
        .filter(|(_, c, ..)| !c.lazy)
        .map(|(.., m, _)| m.counter("hli.deserialize.bytes"))
        .max()
        .unwrap();
    let lazy_bytes = rows
        .iter()
        .filter(|(_, c, ..)| c.lazy)
        .map(|(.., m, _)| m.counter("hli.deserialize.bytes"))
        .max()
        .unwrap();
    if lazy_bytes >= eager_bytes {
        eprintln!("FAIL: lazy import deserialized {lazy_bytes} B, eager {eager_bytes} B");
        ok = false;
    }
    for (label, cfg, row_jobs, _, m, _) in &rows {
        if cfg.shared_cache && m.counter("backend.query_cache.hit") == 0 {
            eprintln!(
                "FAIL: `{label}` ({row_jobs} threads) saw no cache hits despite shared caches"
            );
            ok = false;
        }
    }
    let baseline = &rows[0].5;
    for (label, _, row_jobs, _, _, stats) in &rows[1..] {
        if stats != baseline {
            eprintln!(
                "FAIL: `{label}` ({row_jobs} threads) changed the Table-2 counters: \
                 {stats:?} vs {baseline:?}"
            );
            ok = false;
        }
    }
    let wall_of = |cfg: ImportConfig, j: usize| {
        rows.iter()
            .find(|(_, c, rj, ..)| *c == cfg && *rj == j)
            .map(|(.., w, _, _)| *w)
            .unwrap()
    };
    let seq = wall_of(lazy_shared, 1);
    let threaded = wall_of(lazy_shared, par);
    let speedup = seq.as_secs_f64() / threaded.as_secs_f64().max(1e-9);
    println!();
    println!(
        "lazy/shared speedup at {par} workers: {speedup:.2}x ({} -> {})",
        hli_obs::timing::fmt_ms(seq),
        hli_obs::timing::fmt_ms(threaded)
    );
    if speedup < 1.0 {
        eprintln!("note: no parallel speedup observed (small scale or loaded machine?)");
    }
    println!(
        "checks: lazy deserializes fewer bytes ({lazy_bytes} < {eager_bytes}), shared caches \
         hit, all {} configurations agree on query counters: {}",
        rows.len(),
        if ok { "ok" } else { "FAILED" }
    );
    obs.emit();
    if !ok {
        std::process::exit(1);
    }
}
