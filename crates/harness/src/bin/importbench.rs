//! `importbench` — eager-vs-lazy-vs-zero-copy import, cold-vs-shared
//! query-cache and sequential-vs-parallel driver comparison over the
//! whole suite.
//!
//! Runs the measurement pipeline over a configuration grid — the
//! {eager, lazy, zcopy} × {per-pass, shared} cache configurations on one
//! worker, then the three shared-cache configurations again on `--jobs N`
//! workers (default: all CPUs) — and prints, for each configuration, the
//! wall time, the bytes the decoder actually consumed
//! (`hli.deserialize.bytes`), the units the v2 reader decoded or the v3
//! image structurally validated, the per-configuration peak RSS
//! (`obs.mem.peak_rss_kb`, high-water mark reset between rows where the
//! kernel allows), and the query-cache hit/miss/invalidate counters.
//!
//! The run doubles as a self-check and exits 1 if any of the claims the
//! configurations exist to demonstrate fails to hold:
//!
//! * lazy import must deserialize strictly fewer bytes than eager;
//! * zero-copy import must deserialize strictly fewer bytes than lazy —
//!   opening an `HLI\x03` image decodes only the header, directory and
//!   name pool, never the unit bodies;
//! * shared caches must produce hits (the second scheduling pass re-asks
//!   what the first already asked);
//! * every configuration — including the multi-threaded ones — must
//!   report identical Table-2 query counters: caching, laziness,
//!   zero-copy views and parallelism change cost, never answers.
//!
//! The lazy/shared speedup at `--jobs N` over one worker and the
//! zero-copy peak-RSS delta against eager are printed; they are reported
//! rather than hard-checked because wall-clock ratios and allocator
//! high-water marks on a loaded or sandboxed CI machine are not
//! soundness properties.
//!
//! Usage: `cargo run --release -p hli-harness --bin importbench [n iters]
//! [--jobs N] [--stats text|json] [--trace-out t.json]
//! [--provenance-out p.jsonl]`

use hli_harness::report::{bench_args, collect_suite_jobs, merged_metrics, total_query_stats};
use hli_harness::ImportConfig;

fn main() {
    let a = bench_args("importbench");
    let (scale, obs, jobs) = (a.scale, a.obs, a.jobs);
    let par = hli_pool::resolve_jobs(jobs).max(2);
    let eager_shared = ImportConfig { lazy: false, zero_copy: false, shared_cache: true };
    let lazy_shared = ImportConfig { lazy: true, zero_copy: false, shared_cache: true };
    let zcopy_shared = ImportConfig { lazy: false, zero_copy: true, shared_cache: true };
    let configs = [
        (
            "eager, per-pass caches",
            ImportConfig { lazy: false, zero_copy: false, shared_cache: false },
            1,
        ),
        ("eager, shared caches", eager_shared, 1),
        (
            "lazy,  per-pass caches",
            ImportConfig { lazy: true, zero_copy: false, shared_cache: false },
            1,
        ),
        ("lazy,  shared caches", lazy_shared, 1),
        (
            "zcopy, per-pass caches",
            ImportConfig { lazy: false, zero_copy: true, shared_cache: false },
            1,
        ),
        ("zcopy, shared caches", zcopy_shared, 1),
        ("eager, shared caches", eager_shared, par),
        ("lazy,  shared caches", lazy_shared, par),
        ("zcopy, shared caches", zcopy_shared, par),
    ];

    eprintln!(
        "running {} suite passes at scale n={} iters={} (parallel rows: {par} workers)...",
        configs.len(),
        scale.n,
        scale.iters
    );
    println!(
        "{:<24} {:>7} {:>10} {:>12} {:>9} {:>10} {:>9} {:>9} {:>11}",
        "Configuration",
        "threads",
        "wall",
        "deser (B)",
        "units",
        "peak (kB)",
        "hits",
        "misses",
        "invalidated"
    );
    println!("{}", "-".repeat(108));

    // Reset the kernel's RSS high-water mark before each row so the peak
    // column describes that configuration alone, not the process so far.
    // When the reset is refused (read-only procfs) the column degrades to
    // the process-lifetime peak and the RSS comparison is skipped.
    let rss_resets = hli_obs::mem::reset_peak_rss();
    let mut rows = Vec::new();
    for (label, cfg, row_jobs) in configs {
        hli_obs::mem::reset_peak_rss();
        let (reports, wall) = hli_obs::timing::time(|| collect_suite_jobs(scale, cfg, row_jobs));
        let peak_kb = hli_obs::mem::peak_rss_kb();
        let reports = reports.unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let m = merged_metrics(&reports);
        let stats = total_query_stats(&reports);
        // One counter per import path: the v2 reader counts decoded
        // units, the v3 image counts structurally-validated units.
        let units = m.counter("hli.reader.units_decoded") + m.counter("hli.image.units_validated");
        println!(
            "{:<24} {:>7} {:>10} {:>12} {:>9} {:>10} {:>9} {:>9} {:>11}",
            label,
            row_jobs,
            hli_obs::timing::fmt_ms(wall),
            m.counter("hli.deserialize.bytes"),
            units,
            peak_kb.map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
            m.counter("backend.query_cache.hit"),
            m.counter("backend.query_cache.miss"),
            m.counter("backend.query_cache.invalidate"),
        );
        rows.push((label, cfg, row_jobs, wall, m, stats, peak_kb));
    }

    let mut ok = true;
    let bytes_of = |pick: fn(&ImportConfig) -> bool| {
        rows.iter()
            .filter(|(_, c, ..)| pick(c))
            .map(|(.., m, _, _)| m.counter("hli.deserialize.bytes"))
            .max()
            .unwrap()
    };
    let eager_bytes = bytes_of(|c| !c.lazy && !c.zero_copy);
    let lazy_bytes = bytes_of(|c| c.lazy);
    let zcopy_bytes = bytes_of(|c| c.zero_copy);
    if lazy_bytes >= eager_bytes {
        eprintln!("FAIL: lazy import deserialized {lazy_bytes} B, eager {eager_bytes} B");
        ok = false;
    }
    if zcopy_bytes >= lazy_bytes {
        eprintln!("FAIL: zero-copy import deserialized {zcopy_bytes} B, lazy {lazy_bytes} B");
        ok = false;
    }
    for (label, cfg, row_jobs, _, m, _, _) in &rows {
        if cfg.shared_cache && m.counter("backend.query_cache.hit") == 0 {
            eprintln!(
                "FAIL: `{label}` ({row_jobs} threads) saw no cache hits despite shared caches"
            );
            ok = false;
        }
    }
    let baseline = &rows[0].5;
    for (label, _, row_jobs, _, _, stats, _) in &rows[1..] {
        if stats != baseline {
            eprintln!(
                "FAIL: `{label}` ({row_jobs} threads) changed the Table-2 counters: \
                 {stats:?} vs {baseline:?}"
            );
            ok = false;
        }
    }
    let wall_of = |cfg: ImportConfig, j: usize| {
        rows.iter()
            .find(|(_, c, rj, ..)| *c == cfg && *rj == j)
            .map(|(.., w, _, _, _)| *w)
            .unwrap()
    };
    let seq = wall_of(lazy_shared, 1);
    let threaded = wall_of(lazy_shared, par);
    let speedup = seq.as_secs_f64() / threaded.as_secs_f64().max(1e-9);
    println!();
    println!(
        "lazy/shared speedup at {par} workers: {speedup:.2}x ({} -> {})",
        hli_obs::timing::fmt_ms(seq),
        hli_obs::timing::fmt_ms(threaded)
    );
    if speedup < 1.0 {
        eprintln!("note: no parallel speedup observed (small scale or loaded machine?)");
    }
    let peak_of = |cfg: ImportConfig, j: usize| {
        rows.iter().find(|(_, c, rj, ..)| *c == cfg && *rj == j).and_then(|r| r.6)
    };
    match (rss_resets, peak_of(eager_shared, 1), peak_of(zcopy_shared, 1)) {
        (true, Some(eager_kb), Some(zcopy_kb)) => {
            println!(
                "peak RSS (1 worker, shared caches): eager {eager_kb} kB, zero-copy {zcopy_kb} kB \
                 ({:+} kB)",
                zcopy_kb as i64 - eager_kb as i64
            );
            if zcopy_kb >= eager_kb {
                eprintln!("note: no zero-copy RSS drop observed (allocator reuse at this scale?)");
            }
        }
        _ => {
            println!("peak RSS comparison skipped (VmHWM reset or procfs unavailable)");
        }
    }
    println!(
        "checks: lazy deserializes fewer bytes ({lazy_bytes} < {eager_bytes}), zero-copy fewer \
         still ({zcopy_bytes} < {lazy_bytes}), shared caches hit, all {} configurations agree \
         on query counters: {}",
        rows.len(),
        if ok { "ok" } else { "FAILED" }
    );
    obs.emit();
    if !ok {
        std::process::exit(1);
    }
}
