//! `importbench` — eager-vs-lazy import and cold-vs-shared query-cache
//! comparison over the whole suite.
//!
//! Runs the measurement pipeline four times — {eager, lazy} import ×
//! {per-pass, shared} caches — and prints, for each configuration, the
//! wall time, the bytes the decoder actually consumed
//! (`hli.deserialize.bytes`), the units the v2 reader decoded, and the
//! query-cache hit/miss/invalidate counters.
//!
//! The run doubles as a self-check and exits 1 if any of the claims the
//! configurations exist to demonstrate fails to hold:
//!
//! * lazy import must deserialize strictly fewer bytes than eager;
//! * shared caches must produce hits (the second scheduling pass re-asks
//!   what the first already asked);
//! * every configuration must report identical Table-2 query counters —
//!   caching and laziness change cost, never answers.
//!
//! Usage: `cargo run --release -p hli-harness --bin importbench [n iters]
//! [--stats text|json] [--trace-out t.json] [--provenance-out p.jsonl]`

use hli_harness::report::{bench_args, collect_suite_cfg, merged_metrics, total_query_stats};
use hli_harness::ImportConfig;

fn main() {
    let (scale, obs, _) = bench_args("importbench");
    let configs = [
        (
            "eager, per-pass caches",
            ImportConfig { lazy: false, shared_cache: false },
        ),
        ("eager, shared caches", ImportConfig { lazy: false, shared_cache: true }),
        (
            "lazy,  per-pass caches",
            ImportConfig { lazy: true, shared_cache: false },
        ),
        ("lazy,  shared caches", ImportConfig { lazy: true, shared_cache: true }),
    ];

    eprintln!(
        "running {} suite passes at scale n={} iters={}...",
        configs.len(),
        scale.n,
        scale.iters
    );
    println!(
        "{:<24} {:>9} {:>12} {:>9} {:>9} {:>9} {:>11}",
        "Configuration", "wall (ms)", "deser (B)", "units", "hits", "misses", "invalidated"
    );
    println!("{}", "-".repeat(88));

    let mut rows = Vec::new();
    for (label, cfg) in configs {
        let start = std::time::Instant::now();
        let reports = collect_suite_cfg(scale, cfg).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let wall = start.elapsed();
        let m = merged_metrics(&reports);
        let stats = total_query_stats(&reports);
        println!(
            "{:<24} {:>9.1} {:>12} {:>9} {:>9} {:>9} {:>11}",
            label,
            wall.as_secs_f64() * 1e3,
            m.counter("hli.deserialize.bytes"),
            m.counter("hli.reader.units_decoded"),
            m.counter("backend.query_cache.hit"),
            m.counter("backend.query_cache.miss"),
            m.counter("backend.query_cache.invalidate"),
        );
        rows.push((label, cfg, m, stats));
    }

    let mut ok = true;
    let eager_bytes = rows
        .iter()
        .filter(|(_, c, ..)| !c.lazy)
        .map(|(_, _, m, _)| m.counter("hli.deserialize.bytes"))
        .max()
        .unwrap();
    let lazy_bytes = rows
        .iter()
        .filter(|(_, c, ..)| c.lazy)
        .map(|(_, _, m, _)| m.counter("hli.deserialize.bytes"))
        .max()
        .unwrap();
    if lazy_bytes >= eager_bytes {
        eprintln!("FAIL: lazy import deserialized {lazy_bytes} B, eager {eager_bytes} B");
        ok = false;
    }
    for (label, cfg, m, _) in &rows {
        if cfg.shared_cache && m.counter("backend.query_cache.hit") == 0 {
            eprintln!("FAIL: `{label}` saw no cache hits despite shared caches");
            ok = false;
        }
    }
    let baseline = &rows[0].3;
    for (label, _, _, stats) in &rows[1..] {
        if stats != baseline {
            eprintln!("FAIL: `{label}` changed the Table-2 counters: {stats:?} vs {baseline:?}");
            ok = false;
        }
    }
    println!();
    println!(
        "checks: lazy deserializes fewer bytes ({lazy_bytes} < {eager_bytes}), shared caches \
         hit, all configurations agree on query counters: {}",
        if ok { "ok" } else { "FAILED" }
    );
    obs.emit();
    if !ok {
        std::process::exit(1);
    }
}
