//! AST pretty-printer, used by tests, examples and diagnostics.

use crate::ast::*;

/// Render a program back to MiniC-ish source.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        let decl = declarator(&g.ty, &g.name);
        match g.init {
            Some(ConstInit::Int(v)) => out.push_str(&format!("{decl} = {v};\n")),
            Some(ConstInit::Double(v)) => out.push_str(&format!("{decl} = {v:?};\n")),
            None => out.push_str(&format!("{decl};\n")),
        }
    }
    for f in &p.funcs {
        let params: Vec<String> =
            f.params.iter().map(|pd| format!("{} {}", pd.ty, pd.name)).collect();
        out.push_str(&format!("{} {}({}) ", f.ret, f.name, params.join(", ")));
        block_to_string(&f.body, 0, &mut out);
        out.push('\n');
    }
    out
}

/// Render a C-style declarator: dims after the name (`int a[10][20]`),
/// pointers before it (`int *p`).
fn declarator(ty: &crate::types::Type, name: &str) -> String {
    use crate::types::Type;
    let mut dims = String::new();
    let mut t = ty;
    while let Type::Array(elem, n) = t {
        dims.push_str(&format!("[{n}]"));
        t = elem;
    }
    format!("{t} {name}{dims}")
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn block_to_string(b: &Block, depth: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt_to_string(s, depth + 1, out);
    }
    indent(depth, out);
    out.push('}');
}

fn stmt_to_string(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match &s.kind {
        StmtKind::Decl(d) => {
            let decl = declarator(&d.ty, &d.name);
            match &d.init {
                Some(e) => out.push_str(&format!("{decl} = {};\n", expr_to_string(e))),
                None => out.push_str(&format!("{decl};\n")),
            }
        }
        StmtKind::Expr(e) => out.push_str(&format!("{};\n", expr_to_string(e))),
        StmtKind::Block(b) => {
            block_to_string(b, depth, out);
            out.push('\n');
        }
        StmtKind::If { cond, then_body, else_body } => {
            out.push_str(&format!("if ({}) ", expr_to_string(cond)));
            nested(then_body, depth, out);
            if let Some(e) = else_body {
                indent(depth, out);
                out.push_str("else ");
                nested(e, depth, out);
            }
        }
        StmtKind::While { cond, body } => {
            out.push_str(&format!("while ({}) ", expr_to_string(cond)));
            nested(body, depth, out);
        }
        StmtKind::DoWhile { body, cond } => {
            out.push_str("do ");
            nested(body, depth, out);
            indent(depth, out);
            out.push_str(&format!("while ({});\n", expr_to_string(cond)));
        }
        StmtKind::For { init, cond, step, body } => {
            let part = |e: &Option<Expr>| e.as_ref().map(expr_to_string).unwrap_or_default();
            out.push_str(&format!("for ({}; {}; {}) ", part(init), part(cond), part(step)));
            nested(body, depth, out);
        }
        StmtKind::Return(Some(e)) => out.push_str(&format!("return {};\n", expr_to_string(e))),
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Empty => out.push_str(";\n"),
    }
}

fn nested(s: &Stmt, depth: usize, out: &mut String) {
    if let StmtKind::Block(b) = &s.kind {
        block_to_string(b, depth, out);
        out.push('\n');
    } else {
        out.push('\n');
        stmt_to_string(s, depth + 1, out);
    }
}

/// Render one expression.
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => format!("{v:?}"),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{sym}({})", expr_to_string(a))
        }
        ExprKind::Binary(op, a, b) => {
            format!("({} {} {})", expr_to_string(a), binop_str(*op), expr_to_string(b))
        }
        ExprKind::Index(a, i) => format!("{}[{}]", expr_to_string(a), expr_to_string(i)),
        ExprKind::Deref(p) => format!("*({})", expr_to_string(p)),
        ExprKind::Addr(l) => format!("&({})", expr_to_string(l)),
        ExprKind::Assign(l, r) => format!("{} = {}", expr_to_string(l), expr_to_string(r)),
        ExprKind::CompoundAssign(op, l, r) => {
            format!("{} {}= {}", expr_to_string(l), binop_str(*op), expr_to_string(r))
        }
        ExprKind::IncDec(k, l) => match k {
            IncDec::PreInc => format!("++{}", expr_to_string(l)),
            IncDec::PreDec => format!("--{}", expr_to_string(l)),
            IncDec::PostInc => format!("{}++", expr_to_string(l)),
            IncDec::PostDec => format!("{}--", expr_to_string(l)),
        },
        ExprKind::Call(name, args) => {
            let a: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", a.join(", "))
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_reparses_to_same_shape() {
        let src = "int a[10];\nint main() { int i; for (i = 0; i < 10; i++) a[i] = i * 2; if (a[3] > 4) return 1; else return 0; }";
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed).expect("pretty output reparses");
        // Shape check: same function/global/statement counts.
        assert_eq!(p1.globals.len(), p2.globals.len());
        assert_eq!(p1.funcs.len(), p2.funcs.len());
    }

    #[test]
    fn expr_rendering() {
        let p = parse_program("int main() { return (1 + 2) * 3; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(expr_to_string(e), "((1 + 2) * 3)");
    }

    #[test]
    fn pretty_do_while_and_incdec() {
        let src = "int main() { int i; i = 0; do { i++; } while (i < 3); return i; }";
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        assert!(printed.contains("do "));
        assert!(printed.contains("i++"));
        parse_program(&printed).unwrap();
    }
}
