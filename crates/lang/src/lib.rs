//! # hli-lang — the MiniC language substrate
//!
//! The HLI paper integrates the SUIF front-end with the GCC back-end over C
//! and Fortran sources. Neither SUIF nor GCC is available as a Rust library,
//! so this crate provides the *source language substrate* the rest of the
//! reproduction is built on: **MiniC**, a C subset rich enough to exercise
//! every feature the HLI format describes:
//!
//! * `int` and `double` scalars, multi-dimensional fixed-size arrays,
//!   pointers (including pointer parameters and address-of), so the alias
//!   table has something to say;
//! * functions with by-value scalar and by-reference array/pointer
//!   parameters, so the call REF/MOD table has something to say;
//! * canonical `for` loops (recognized into the region tree), `while`,
//!   `if`/`else`, so the loop-carried dependence table has something to say.
//!
//! The crate provides:
//!
//! * [`lexer`] / [`parser`] — text to AST, with source-line tracking on every
//!   node (the line table of the HLI file is keyed by source line);
//! * [`ast`] — the tree itself, with stable [`ast::ExprId`]/[`ast::StmtId`]
//!   node identities used by analyses to attach facts;
//! * [`sema`] — symbol resolution, type checking, address-taken analysis and
//!   canonical-loop recognition;
//! * [`interp`] — a reference AST interpreter used as the correctness oracle
//!   for the back-end and the machine simulators (a program's observable
//!   behaviour is `main`'s return value plus a checksum of global memory);
//! * [`memwalk`] — the *memory-access enumeration contract*: the single
//!   definition of which source constructs touch memory and in which order
//!   the back-end will emit them, shared by the front-end's ITEMGEN phase and
//!   verified against the back-end's lowering (Section 3.1.1 of the paper);
//! * [`pretty`] — AST printing, used by tests and the `hli_explorer` example.

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod memwalk;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod types;

pub use ast::{Expr, ExprId, ExprKind, FuncDef, Program, Stmt, StmtId, StmtKind};
pub use parser::parse_program;
pub use sema::{analyze, Sema, SemaError, Storage, SymId, SymInfo};
pub use types::Type;

/// Convenience: parse and semantically analyze a MiniC source string.
///
/// Returns the AST and the semantic model, or the first error encountered.
pub fn compile_to_ast(src: &str) -> Result<(Program, Sema), String> {
    let prog = parse_program(src).map_err(|e| e.to_string())?;
    let sema = analyze(&prog).map_err(|e| e.to_string())?;
    Ok((prog, sema))
}
