//! Token definitions for the MiniC lexer.

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    /// 1-based source line. Line numbers are load-bearing throughout the
    /// system: the HLI line table keys items by source line.
    pub line: u32,
    /// 1-based source column (diagnostics only).
    pub col: u32,
}

/// The kinds of MiniC tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    // Literals and identifiers.
    IntLit(i64),
    FloatLit(f64),
    Ident(String),

    // Keywords.
    KwInt,
    KwDouble,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwDo,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,

    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Bang,
    Tilde,
    AmpAmp,
    PipePipe,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,

    /// End of input sentinel.
    Eof,
}

impl TokKind {
    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokKind::IntLit(v) => format!("integer literal `{v}`"),
            TokKind::FloatLit(v) => format!("float literal `{v}`"),
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal spelling for fixed tokens (empty for variable ones).
    pub fn symbol(&self) -> &'static str {
        match self {
            TokKind::KwInt => "int",
            TokKind::KwDouble => "double",
            TokKind::KwVoid => "void",
            TokKind::KwIf => "if",
            TokKind::KwElse => "else",
            TokKind::KwWhile => "while",
            TokKind::KwFor => "for",
            TokKind::KwReturn => "return",
            TokKind::KwBreak => "break",
            TokKind::KwContinue => "continue",
            TokKind::KwDo => "do",
            TokKind::LParen => "(",
            TokKind::RParen => ")",
            TokKind::LBrace => "{",
            TokKind::RBrace => "}",
            TokKind::LBracket => "[",
            TokKind::RBracket => "]",
            TokKind::Semi => ";",
            TokKind::Comma => ",",
            TokKind::Plus => "+",
            TokKind::Minus => "-",
            TokKind::Star => "*",
            TokKind::Slash => "/",
            TokKind::Percent => "%",
            TokKind::Amp => "&",
            TokKind::Pipe => "|",
            TokKind::Caret => "^",
            TokKind::Shl => "<<",
            TokKind::Shr => ">>",
            TokKind::Bang => "!",
            TokKind::Tilde => "~",
            TokKind::AmpAmp => "&&",
            TokKind::PipePipe => "||",
            TokKind::Lt => "<",
            TokKind::Le => "<=",
            TokKind::Gt => ">",
            TokKind::Ge => ">=",
            TokKind::EqEq => "==",
            TokKind::NotEq => "!=",
            TokKind::Assign => "=",
            TokKind::PlusAssign => "+=",
            TokKind::MinusAssign => "-=",
            TokKind::StarAssign => "*=",
            TokKind::SlashAssign => "/=",
            TokKind::PercentAssign => "%=",
            TokKind::PlusPlus => "++",
            TokKind::MinusMinus => "--",
            TokKind::IntLit(_) | TokKind::FloatLit(_) | TokKind::Ident(_) | TokKind::Eof => "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_fixed_tokens() {
        assert_eq!(TokKind::PlusAssign.describe(), "`+=`");
        assert_eq!(TokKind::KwWhile.describe(), "`while`");
    }

    #[test]
    fn describe_variable_tokens() {
        assert_eq!(TokKind::IntLit(42).describe(), "integer literal `42`");
        assert_eq!(TokKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokKind::Eof.describe(), "end of input");
    }
}
