//! A reference interpreter for MiniC ASTs.
//!
//! This is the semantic oracle for the whole reproduction: the back-end's
//! RTL interpreter (in `hli-machine`) must produce exactly the same
//! observable behaviour — `main`'s return value plus a checksum over global
//! memory — under every optimization combination. Differential tests between
//! the two catch miscompilations the way the paper's authors relied on SPEC
//! validation outputs.
//!
//! The memory model matches the back-end's: every scalar occupies one 8-byte
//! word; globals live at fixed addresses; arrays and address-taken locals
//! get stack slots; all other local scalars live in per-frame "registers"
//! (exactly the pseudo-register assignment the paper's ITEMGEN rule keys on).

use crate::ast::*;
use crate::sema::{Sema, Storage, SymId};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Base byte address of the globals segment.
pub const GLOBAL_BASE: i64 = 0x1000;
/// Base byte address of the stack segment (grows upward, frame by frame).
pub const STACK_BASE: i64 = 0x0010_0000;
/// Memory ceiling (64 MiB) — programs touching beyond this fault.
pub const MEM_LIMIT: i64 = 0x0400_0000;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Double(f64),
    /// A byte address.
    Ptr(i64),
}

impl Value {
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Double(v) => v as i64,
            Value::Ptr(a) => a,
        }
    }

    pub fn as_double(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Double(v) => v,
            Value::Ptr(a) => a as f64,
        }
    }

    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Double(v) => v != 0.0,
            Value::Ptr(a) => a != 0,
        }
    }

    /// Raw bit pattern, for memory storage and checksums.
    pub fn bits(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Double(v) => v.to_bits(),
            Value::Ptr(a) => a as u64,
        }
    }

    /// Reinterpret stored bits according to a type.
    pub fn from_bits(bits: u64, ty: &Type) -> Value {
        match ty {
            Type::Double => Value::Double(f64::from_bits(bits)),
            Type::Ptr(_) => Value::Ptr(bits as i64),
            _ => Value::Int(bits as i64),
        }
    }

    /// Convert to the representation a slot of type `ty` holds.
    pub fn convert_to(self, ty: &Type) -> Value {
        match ty {
            Type::Double => Value::Double(self.as_double()),
            Type::Int => Value::Int(self.as_int()),
            Type::Ptr(_) => Value::Ptr(self.as_int()),
            _ => self,
        }
    }
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    pub msg: String,
    pub line: u32,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics (used by tests and the harness to characterize
/// workloads, e.g. memory references per line for Table 1 commentary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    pub steps: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
}

/// Result of running a program to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecResult {
    /// `main`'s return value.
    pub ret: i64,
    /// FNV-1a over the global segment's words — the second observable.
    pub global_checksum: u64,
    pub stats: InterpStats,
}

/// Run `main()` with a default step budget.
pub fn run_program(prog: &Program, sema: &Sema) -> Result<ExecResult, InterpError> {
    run_program_limited(prog, sema, 200_000_000)
}

/// Run `main()` with an explicit step budget (one step per evaluated
/// expression node or executed statement).
pub fn run_program_limited(
    prog: &Program,
    sema: &Sema,
    max_steps: u64,
) -> Result<ExecResult, InterpError> {
    let mut interp = Interp::new(prog, sema, max_steps);
    interp.init_globals()?;
    let main = prog
        .func("main")
        .ok_or_else(|| InterpError { msg: "no `main` function".into(), line: 0 })?;
    let ret = interp.call(main, Vec::new(), 0)?;
    Ok(ExecResult {
        ret: ret.as_int(),
        global_checksum: interp.global_checksum(),
        stats: interp.stats,
    })
}

/// Either a control-flow escape or a plain completion.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Where an lvalue lives.
#[derive(Clone)]
enum Place {
    /// Pseudo-register (frame-local scalar).
    Reg(SymId),
    /// Memory word at a byte address, holding a value of the given type.
    Mem(i64, Type),
}

struct Frame {
    regs: HashMap<SymId, Value>,
    /// Stack addresses of memory-resident locals/params.
    slots: HashMap<SymId, i64>,
    base: i64,
}

struct Interp<'a> {
    prog: &'a Program,
    sema: &'a Sema,
    /// Word-granular memory, indexed by byte address / 8.
    mem: Vec<u64>,
    global_addr: HashMap<SymId, i64>,
    globals_end: i64,
    frames: Vec<Frame>,
    sp: i64,
    stats: InterpStats,
    max_steps: u64,
}

impl<'a> Interp<'a> {
    fn new(prog: &'a Program, sema: &'a Sema, max_steps: u64) -> Self {
        Interp {
            prog,
            sema,
            mem: vec![0; (STACK_BASE / 8) as usize],
            global_addr: HashMap::new(),
            globals_end: GLOBAL_BASE,
            frames: Vec::new(),
            sp: STACK_BASE,
            stats: InterpStats::default(),
            max_steps,
        }
    }

    fn step(&mut self, line: u32) -> Result<(), InterpError> {
        self.stats.steps += 1;
        if self.stats.steps > self.max_steps {
            return Err(InterpError { msg: "step budget exceeded".into(), line });
        }
        Ok(())
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> InterpError {
        InterpError { msg: msg.into(), line }
    }

    fn mem_read(&mut self, addr: i64, line: u32) -> Result<u64, InterpError> {
        if !(GLOBAL_BASE..MEM_LIMIT).contains(&addr) || addr % 8 != 0 {
            return Err(self.err(line, format!("bad load address {addr:#x}")));
        }
        let idx = (addr / 8) as usize;
        if idx >= self.mem.len() {
            self.mem.resize(idx + 1, 0);
        }
        self.stats.loads += 1;
        Ok(self.mem[idx])
    }

    fn mem_write(&mut self, addr: i64, bits: u64, line: u32) -> Result<(), InterpError> {
        if !(GLOBAL_BASE..MEM_LIMIT).contains(&addr) || addr % 8 != 0 {
            return Err(self.err(line, format!("bad store address {addr:#x}")));
        }
        let idx = (addr / 8) as usize;
        if idx >= self.mem.len() {
            self.mem.resize(idx + 1, 0);
        }
        self.stats.stores += 1;
        self.mem[idx] = bits;
        Ok(())
    }

    fn init_globals(&mut self) -> Result<(), InterpError> {
        let mut addr = GLOBAL_BASE;
        for (gi, &sym) in self.sema.globals.iter().enumerate() {
            let info = self.sema.sym(sym);
            self.global_addr.insert(sym, addr);
            let size = info.ty.size().max(8) as i64;
            if let Some(init) = &self.prog.globals[gi].init {
                let v = match init {
                    ConstInit::Int(v) => Value::Int(*v),
                    ConstInit::Double(v) => Value::Double(*v),
                };
                let line = info.line;
                self.mem_write(addr, v.convert_to(&info.ty).bits(), line)?;
                // Init writes are setup, not program behaviour.
                self.stats.stores -= 1;
            }
            addr += size;
        }
        self.globals_end = addr;
        Ok(())
    }

    fn global_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in (GLOBAL_BASE..self.globals_end).step_by(8) {
            let w = self.mem.get((a / 8) as usize).copied().unwrap_or(0);
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("active frame")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("active frame")
    }

    fn call(&mut self, f: &'a FuncDef, args: Vec<Value>, line: u32) -> Result<Value, InterpError> {
        // Keep the MiniC frame limit low enough that the interpreter's own
        // Rust recursion (several host frames per MiniC frame) fits in a
        // default 2 MiB test-thread stack.
        if self.frames.len() > 128 {
            return Err(self.err(line, "call stack overflow"));
        }
        self.stats.calls += 1;
        let base = self.sp;
        let mut frame = Frame { regs: HashMap::new(), slots: HashMap::new(), base };
        let params = &self.sema.func_params[self.sema.func_sigs[&f.name].index as usize];
        for (&sym, val) in params.iter().zip(args) {
            let info = self.sema.sym(sym);
            let val = val.convert_to(&info.ty);
            if info.is_mem_resident() {
                let addr = self.sp;
                self.sp += 8;
                frame.slots.insert(sym, addr);
                self.mem_write(addr, val.bits(), line)?;
                self.stats.stores -= 1; // ABI traffic, not program behaviour
            } else {
                frame.regs.insert(sym, val);
            }
        }
        self.frames.push(frame);
        let flow = self.block(&f.body)?;
        let frame = self.frames.pop().expect("frame");
        self.sp = frame.base;
        match flow {
            Flow::Return(v) => Ok(v.convert_to(&f.ret)),
            _ if f.ret == Type::Void => Ok(Value::Int(0)),
            _ => Err(self.err(f.line, format!("function `{}` fell off the end", f.name))),
        }
    }

    fn alloc_local(&mut self, sym: SymId, line: u32) -> Result<(), InterpError> {
        let info = self.sema.sym(sym);
        if info.is_mem_resident() {
            let size = info.ty.size().max(8) as i64;
            let addr = self.sp;
            self.sp += size;
            if self.sp >= MEM_LIMIT {
                return Err(self.err(line, "stack segment exhausted"));
            }
            // Zero the slot (freshly reused stack may hold old bits).
            for a in (addr..addr + size).step_by(8) {
                self.mem_write(a, 0, line)?;
                self.stats.stores -= 1;
            }
            self.frame_mut().slots.insert(sym, addr);
        } else {
            self.frame_mut().regs.insert(sym, default_value(&info.ty));
        }
        Ok(())
    }

    fn block(&mut self, b: &'a Block) -> Result<Flow, InterpError> {
        for s in &b.stmts {
            match self.stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &'a Stmt) -> Result<Flow, InterpError> {
        self.step(s.line)?;
        match &s.kind {
            StmtKind::Decl(d) => {
                let sym = self.decl_sym(s, d);
                self.alloc_local(sym, s.line)?;
                if let Some(init) = &d.init {
                    let v = self.eval(init)?;
                    self.write_place(self.sym_place(sym), v, s.line)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.block(b),
            StmtKind::If { cond, then_body, else_body } => {
                if self.eval(cond)?.truthy() {
                    self.stmt(then_body)
                } else if let Some(e) = else_body {
                    self.stmt(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond)?.truthy() {
                    self.step(s.line)?;
                    match self.stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.step(s.line)?;
                    match self.stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.eval(e)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break;
                        }
                    }
                    self.step(s.line)?;
                    match self.stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(e) = step {
                        self.eval(e)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(v) => {
                let val = match v {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(val))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    /// Resolve the symbol a `Decl` statement declared (recorded by sema).
    fn decl_sym(&self, s: &Stmt, _d: &LocalDecl) -> SymId {
        self.sema.decl_sym[&s.id]
    }

    fn sym_place(&self, sym: SymId) -> Place {
        let info = self.sema.sym(sym);
        if info.is_mem_resident() {
            let addr = match info.storage {
                Storage::Global => self.global_addr[&sym],
                _ => self.frame().slots[&sym],
            };
            Place::Mem(addr, info.ty.clone())
        } else {
            Place::Reg(sym)
        }
    }

    fn read_place(&mut self, p: Place, line: u32) -> Result<Value, InterpError> {
        match p {
            Place::Reg(sym) => {
                Ok(*self.frame().regs.get(&sym).unwrap_or(&default_value(&self.sema.sym(sym).ty)))
            }
            Place::Mem(addr, ty) => {
                let bits = self.mem_read(addr, line)?;
                Ok(Value::from_bits(bits, &ty))
            }
        }
    }

    fn write_place(&mut self, p: Place, v: Value, line: u32) -> Result<(), InterpError> {
        match p {
            Place::Reg(sym) => {
                let ty = self.sema.sym(sym).ty.clone();
                self.frame_mut().regs.insert(sym, v.convert_to(&ty));
                Ok(())
            }
            Place::Mem(addr, ty) => self.mem_write(addr, v.convert_to(&ty).bits(), line),
        }
    }

    /// Compute the place of an lvalue expression.
    fn place(&mut self, e: &'a Expr) -> Result<Place, InterpError> {
        match &e.kind {
            ExprKind::Ident(_) => Ok(self.sym_place(self.sema.sym_of(e))),
            ExprKind::Index(base, idx) => {
                let base_addr = self.address_of(base)?;
                let i = self.eval(idx)?.as_int();
                let elem_ty = self.sema.ty_of(e).clone();
                let stride = elem_ty.size().max(8) as i64;
                Ok(Place::Mem(base_addr + i * stride, elem_ty))
            }
            ExprKind::Deref(p) => {
                let addr = self.eval(p)?.as_int();
                Ok(Place::Mem(addr, self.sema.ty_of(e).clone()))
            }
            _ => Err(self.err(e.line, "not an lvalue")),
        }
    }

    /// Address an array/pointer expression designates (for indexing).
    fn address_of(&mut self, e: &'a Expr) -> Result<i64, InterpError> {
        let ty = self.sema.ty_of(e).clone();
        if ty.is_array() {
            // Arrays designate their storage directly.
            match &e.kind {
                ExprKind::Ident(_) => {
                    let sym = self.sema.sym_of(e);
                    match self.sym_place(sym) {
                        Place::Mem(addr, _) => Ok(addr),
                        Place::Reg(_) => unreachable!("arrays are memory-resident"),
                    }
                }
                ExprKind::Index(base, idx) => {
                    let base_addr = self.address_of(base)?;
                    let i = self.eval(idx)?.as_int();
                    Ok(base_addr + i * ty.size() as i64)
                }
                ExprKind::Deref(p) => Ok(self.eval(p)?.as_int()),
                _ => Err(self.err(e.line, "cannot take array address of this expression")),
            }
        } else {
            // Pointer value.
            Ok(self.eval(e)?.as_int())
        }
    }

    fn eval(&mut self, e: &'a Expr) -> Result<Value, InterpError> {
        self.step(e.line)?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Double(*v)),
            ExprKind::Ident(_) => {
                let ty = self.sema.ty_of(e).clone();
                if ty.is_array() {
                    // Decay to pointer-to-first-element.
                    Ok(Value::Ptr(self.address_of(e)?))
                } else {
                    let p = self.place(e)?;
                    self.read_place(p, e.line)
                }
            }
            ExprKind::Unary(op, a) => {
                let v = self.eval(a)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::Double(d) => Value::Double(-d),
                        other => Value::Int(-other.as_int()),
                    },
                    UnOp::Not => Value::Int(!v.truthy() as i64),
                    UnOp::BitNot => Value::Int(!v.as_int()),
                })
            }
            ExprKind::Binary(op, a, b) => self.binary(e, *op, a, b),
            ExprKind::Index(..) => {
                let ty = self.sema.ty_of(e).clone();
                if ty.is_array() {
                    Ok(Value::Ptr(self.address_of(e)?))
                } else {
                    let p = self.place(e)?;
                    self.read_place(p, e.line)
                }
            }
            ExprKind::Deref(_) => {
                let p = self.place(e)?;
                self.read_place(p, e.line)
            }
            ExprKind::Addr(lv) => match self.place(lv)? {
                Place::Mem(addr, _) => Ok(Value::Ptr(addr)),
                Place::Reg(_) => Err(self.err(
                    e.line,
                    "internal: address of register value (sema should mark address-taken)",
                )),
            },
            ExprKind::Assign(lhs, rhs) => {
                // Contract: RHS evaluates before the LHS address (see
                // `memwalk` — the item order depends on this).
                let v = self.eval(rhs)?;
                let p = self.place(lhs)?;
                let ty = self.sema.ty_of(lhs).clone();
                let v = v.convert_to(&ty);
                self.write_place(p, v, e.line)?;
                Ok(v)
            }
            ExprKind::CompoundAssign(op, lhs, rhs) => {
                // Contract (see memwalk): the lvalue address is computed
                // once — subscript side effects must not run twice.
                let p = self.place(lhs)?;
                let old = self.read_place(p.clone(), e.line)?;
                let rv = self.eval(rhs)?;
                let ty = self.sema.ty_of(lhs).clone();
                let combined = self.apply_binop(*op, old, rv, &ty, e.line)?.convert_to(&ty);
                self.write_place(p, combined, e.line)?;
                Ok(combined)
            }
            ExprKind::IncDec(kind, lv) => {
                let ty = self.sema.ty_of(lv).clone();
                let p = self.place(lv)?;
                let old = self.read_place(p.clone(), e.line)?;
                let delta = if let Type::Ptr(t) = &ty {
                    t.size().max(8) as i64
                } else {
                    1
                };
                let delta = if kind.is_inc() { delta } else { -delta };
                let new = match old {
                    Value::Double(d) => Value::Double(d + delta as f64),
                    other => {
                        let v = other.as_int() + delta;
                        if ty.is_pointer() {
                            Value::Ptr(v)
                        } else {
                            Value::Int(v)
                        }
                    }
                };
                self.write_place(p, new, e.line)?;
                Ok(if kind.is_pre() { new } else { old })
            }
            ExprKind::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                let idx = self.sema.func_sigs[name].index as usize;
                let f = &self.prog.funcs[idx];
                self.call(f, vals, e.line)
            }
        }
    }

    fn binary(
        &mut self,
        e: &'a Expr,
        op: BinOp,
        a: &'a Expr,
        b: &'a Expr,
    ) -> Result<Value, InterpError> {
        // Short-circuit logicals first.
        match op {
            BinOp::LogAnd => {
                let va = self.eval(a)?;
                if !va.truthy() {
                    return Ok(Value::Int(0));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Int(vb.truthy() as i64));
            }
            BinOp::LogOr => {
                let va = self.eval(a)?;
                if va.truthy() {
                    return Ok(Value::Int(1));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Int(vb.truthy() as i64));
            }
            _ => {}
        }
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        let ty = self.sema.ty_of(e).clone();
        // Pointer arithmetic scales by the pointee size.
        let ta = self.sema.ty_of(a).decayed();
        let tb = self.sema.ty_of(b).decayed();
        match (op, &ta, &tb) {
            (BinOp::Add, Type::Ptr(t), _) => {
                return Ok(Value::Ptr(va.as_int() + vb.as_int() * t.size().max(8) as i64));
            }
            (BinOp::Add, _, Type::Ptr(t)) => {
                return Ok(Value::Ptr(vb.as_int() + va.as_int() * t.size().max(8) as i64));
            }
            (BinOp::Sub, Type::Ptr(t), Type::Int) => {
                return Ok(Value::Ptr(va.as_int() - vb.as_int() * t.size().max(8) as i64));
            }
            (BinOp::Sub, Type::Ptr(t), Type::Ptr(_)) => {
                return Ok(Value::Int((va.as_int() - vb.as_int()) / t.size().max(8) as i64));
            }
            _ => {}
        }
        self.apply_binop(op, va, vb, &ty, e.line)
    }

    fn apply_binop(
        &self,
        op: BinOp,
        va: Value,
        vb: Value,
        result_ty: &Type,
        line: u32,
    ) -> Result<Value, InterpError> {
        use BinOp::*;
        let float = matches!(va, Value::Double(_))
            || matches!(vb, Value::Double(_))
            || result_ty.is_float();
        if op.is_boolean() {
            let r = if float {
                let (x, y) = (va.as_double(), vb.as_double());
                match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (va.as_int(), vb.as_int());
                match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                }
            };
            return Ok(Value::Int(r as i64));
        }
        if float && matches!(op, Add | Sub | Mul | Div) {
            let (x, y) = (va.as_double(), vb.as_double());
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    // IEEE semantics: division by zero yields inf/nan.
                    x / y
                }
                _ => unreachable!(),
            };
            return Ok(Value::Double(r).convert_to(result_ty));
        }
        let (x, y) = (va.as_int(), vb.as_int());
        let r = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(self.err(line, "integer division by zero"));
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(self.err(line, "integer remainder by zero"));
                }
                x.wrapping_rem(y)
            }
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            BitAnd => x & y,
            BitOr => x | y,
            BitXor => x ^ y,
            _ => unreachable!(),
        };
        Ok(Value::Int(r).convert_to(result_ty))
    }
}

fn default_value(ty: &Type) -> Value {
    match ty {
        Type::Double => Value::Double(0.0),
        Type::Ptr(_) => Value::Ptr(0),
        _ => Value::Int(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ast;

    fn run(src: &str) -> ExecResult {
        let (p, s) = compile_to_ast(src).unwrap();
        run_program(&p, &s).unwrap()
    }

    fn ret(src: &str) -> i64 {
        run(src).ret
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ret("int main() { return 1 + 2 * 3 - 4 / 2; }"), 5);
        assert_eq!(ret("int main() { return (1 + 2) * 3 % 5; }"), 4);
        assert_eq!(ret("int main() { return 1 << 4 | 3; }"), 19);
    }

    #[test]
    fn float_arithmetic_truncates_to_int_return() {
        assert_eq!(ret("int main() { double x; x = 7.9; return x; }"), 7);
        assert_eq!(ret("int main() { return 10.0 / 4.0 * 2.0; }"), 5);
    }

    #[test]
    fn comparisons_and_logicals() {
        assert_eq!(
            ret("int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (1 == 1) + (1 != 1); }"),
            4
        );
        assert_eq!(ret("int main() { return (1 && 0) || (2 && 3); }"), 1);
        assert_eq!(ret("int main() { return !5 + !0; }"), 1);
    }

    #[test]
    fn short_circuit_avoids_side_effect() {
        assert_eq!(
            ret("int g = 0; int set() { g = 1; return 1; } int main() { int r; r = 0 && set(); return g * 10 + r; }"),
            0
        );
        assert_eq!(
            ret("int g = 0; int set() { g = 1; return 0; } int main() { int r; r = 1 || set(); return g * 10 + r; }"),
            1
        );
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            ret("int main() { int i; int s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }"),
            55
        );
        assert_eq!(
            ret("int main() { int i; int s; i = 0; s = 0; while (i < 5) { s += i; i++; } return s; }"),
            10
        );
        assert_eq!(
            ret("int main() { int i; int s; i = 10; s = 0; do { s++; i++; } while (i < 5); return s; }"),
            1
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            ret("int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; s += i; } return s; }"),
            6
        );
    }

    #[test]
    fn arrays_and_nested_indexing() {
        assert_eq!(
            ret("int a[3][4]; int main() { int i; int j; for (i=0;i<3;i++) for (j=0;j<4;j++) a[i][j] = i*10+j; return a[2][3]; }"),
            23
        );
    }

    #[test]
    fn local_array_on_stack() {
        assert_eq!(
            ret("int main() { int a[8]; int i; for (i=0;i<8;i++) a[i] = i*i; return a[7]; }"),
            49
        );
    }

    #[test]
    fn pointers_and_address_of() {
        assert_eq!(ret("int main() { int x; int *p; x = 5; p = &x; *p = 9; return x; }"), 9);
        assert_eq!(
            ret("int a[4]; int main() { int *p; p = &a[1]; *p = 7; *(p+1) = 8; return a[1] + a[2]; }"),
            15
        );
    }

    #[test]
    fn pointer_param_aliases_caller_array() {
        assert_eq!(
            ret("double v[4]; void fill(double *p, int n) { int i; for (i=0;i<n;i++) p[i] = i + 0.5; } int main() { fill(v, 4); return v[3] * 2.0; }"),
            7
        );
    }

    #[test]
    fn recursion() {
        assert_eq!(
            ret("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(12); }"),
            144
        );
    }

    #[test]
    fn incdec_pre_post_semantics() {
        assert_eq!(ret("int main() { int x; x = 5; return x++ * 10 + x; }"), 56);
        assert_eq!(ret("int main() { int x; x = 5; return ++x * 10 + x; }"), 66);
        assert_eq!(ret("int main() { int x; x = 5; return x-- - x; }"), 1);
    }

    #[test]
    fn pointer_incdec_scales() {
        assert_eq!(
            ret("int a[4]; int main() { int *p; a[2] = 42; p = &a[1]; p++; return *p; }"),
            42
        );
    }

    #[test]
    fn compound_assign_on_array_elem() {
        assert_eq!(
            ret("int a[2]; int main() { a[0] = 3; a[0] *= 7; a[0] += 1; return a[0]; }"),
            22
        );
    }

    #[test]
    fn globals_initialized() {
        assert_eq!(ret("int g = 41; int main() { return g + 1; }"), 42);
        assert_eq!(ret("double d = 2.5; int main() { return d * 4.0; }"), 10);
    }

    #[test]
    fn global_checksum_reflects_state() {
        let a = run("int g[4]; int main() { g[0] = 1; return 0; }");
        let b = run("int g[4]; int main() { g[0] = 2; return 0; }");
        assert_ne!(a.global_checksum, b.global_checksum);
        let c = run("int g[4]; int main() { g[0] = 1; return 0; }");
        assert_eq!(a.global_checksum, c.global_checksum);
    }

    #[test]
    fn division_by_zero_faults() {
        let (p, s) = compile_to_ast("int main() { int z; z = 0; return 1 / z; }").unwrap();
        let e = run_program(&p, &s).unwrap_err();
        assert!(e.msg.contains("division by zero"));
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let (p, s) = compile_to_ast("int main() { while (1) { } return 0; }").unwrap();
        let e = run_program_limited(&p, &s, 10_000).unwrap_err();
        assert!(e.msg.contains("step budget"));
    }

    #[test]
    fn null_deref_faults() {
        let (p, s) = compile_to_ast("int main() { int *p; return *p; }").unwrap();
        let e = run_program(&p, &s).unwrap_err();
        assert!(e.msg.contains("bad load address"));
    }

    #[test]
    fn call_stack_overflow_faults() {
        let (p, s) =
            compile_to_ast("int f(int n) { return f(n + 1); } int main() { return f(0); }")
                .unwrap();
        let e = run_program(&p, &s).unwrap_err();
        assert!(e.msg.contains("overflow") || e.msg.contains("step budget"));
    }

    #[test]
    fn multiple_return_paths() {
        assert_eq!(
            ret("int sign(int x) { if (x > 0) return 1; if (x < 0) return -1; return 0; } int main() { return sign(-5) + sign(7) * 10 + sign(0) * 100; }"),
            9
        );
    }

    #[test]
    fn double_to_int_conversion_on_assign() {
        assert_eq!(ret("int main() { int x; x = 3.99; return x; }"), 3);
        assert_eq!(ret("double d; int main() { d = 3; return d * 2.0; }"), 6);
    }

    #[test]
    fn stats_count_memory_traffic() {
        let r = run("int g; int main() { g = 1; return g; }");
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.calls, 1); // main itself
    }

    #[test]
    fn stack_reuse_across_calls_is_clean() {
        // f leaves garbage on the stack; g's fresh array must read as zeros.
        assert_eq!(
            ret("void f() { int a[4]; a[0] = 99; a[1] = 98; a[2] = 97; a[3] = 96; } \
                 int g() { int b[4]; return b[0] + b[1] + b[2] + b[3]; } \
                 int main() { f(); return g(); }"),
            0
        );
    }
}
