//! The MiniC type system.
//!
//! Deliberately small: `void`, `int` (64-bit signed in this implementation),
//! `double`, pointers, and fixed-size (possibly multi-dimensional) arrays.
//! Structs are intentionally absent — see DESIGN.md; the only ITEMGEN rule
//! they would add (struct-return memory write) has no other consumer.

use std::fmt;

/// A MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Void,
    Int,
    Double,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// `elem[len]`. `int a[20][10]` is `Array(Array(Int,10),20)`.
    Array(Box<Type>, usize),
}

impl Type {
    /// Size in bytes of a value of this type. Both `int` and `double` are 8
    /// bytes in this implementation (one memory word), which keeps address
    /// arithmetic in the back-end and machine models uniform.
    pub fn size(&self) -> usize {
        match self {
            Type::Void => 0,
            Type::Int | Type::Double | Type::Ptr(_) => 8,
            Type::Array(elem, n) => elem.size() * n,
        }
    }

    /// Is this a scalar (register-assignable) type?
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Double | Type::Ptr(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Double)
    }

    pub fn is_float(&self) -> bool {
        matches!(self, Type::Double)
    }

    /// The element type after one subscript / dereference, if any.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The ultimate scalar element type of an array/pointer chain.
    pub fn base_scalar(&self) -> &Type {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => t.base_scalar(),
            t => t,
        }
    }

    /// Array dimension lengths, outermost first (`int a[20][10]` → `[20,10]`).
    pub fn array_dims(&self) -> Vec<usize> {
        let mut dims = Vec::new();
        let mut t = self;
        while let Type::Array(elem, n) = t {
            dims.push(*n);
            t = elem;
        }
        dims
    }

    /// What an array decays to in rvalue / parameter position.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            t => t.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Double => write!(f, "double"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::Int.size(), 8);
        assert_eq!(Type::Double.size(), 8);
        assert_eq!(Type::Ptr(Box::new(Type::Double)).size(), 8);
        let a = Type::Array(Box::new(Type::Array(Box::new(Type::Int), 10)), 20);
        assert_eq!(a.size(), 1600);
        assert_eq!(Type::Void.size(), 0);
    }

    #[test]
    fn dims_and_base() {
        let a = Type::Array(Box::new(Type::Array(Box::new(Type::Double), 10)), 20);
        assert_eq!(a.array_dims(), vec![20, 10]);
        assert_eq!(*a.base_scalar(), Type::Double);
        assert!(a.is_array());
        assert!(!a.is_scalar());
    }

    #[test]
    fn decay() {
        let a = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(a.decayed(), Type::Ptr(Box::new(Type::Int)));
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn display() {
        assert_eq!(Type::Ptr(Box::new(Type::Int)).to_string(), "int*");
        assert_eq!(Type::Array(Box::new(Type::Double), 8).to_string(), "double[8]");
    }

    #[test]
    fn element_access() {
        let p = Type::Ptr(Box::new(Type::Double));
        assert_eq!(p.element(), Some(&Type::Double));
        assert_eq!(Type::Int.element(), None);
    }
}
