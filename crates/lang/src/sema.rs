//! Semantic analysis for MiniC.
//!
//! Resolves identifiers to symbols, type-checks every expression, computes
//! the *address-taken* property (which drives the back-end's pseudo-register
//! rule and therefore which accesses become HLI items), and recognizes
//! *canonical loops* — the countable `for (i = lo; i < hi; i += s)` shape
//! that becomes an analyzable HLI region with known bounds.

use crate::ast::*;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Identity of a declared variable (global, local, or parameter).
pub type SymId = u32;

/// Where a variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    Global,
    /// A local of function `func` (index into `Program::funcs`).
    Local {
        func: u32,
    },
    /// Parameter `index` of function `func`.
    Param {
        func: u32,
        index: usize,
    },
}

/// Everything sema knows about one variable.
#[derive(Debug, Clone)]
pub struct SymInfo {
    pub name: String,
    pub ty: Type,
    pub storage: Storage,
    /// True if `&name` appears anywhere. Address-taken scalars cannot live
    /// in pseudo-registers, so their accesses generate HLI items.
    pub address_taken: bool,
    pub line: u32,
}

impl SymInfo {
    /// Does this variable live in memory under the GCC `-O1`-and-above rule
    /// the paper describes (Section 3.1.1)? Globals, arrays, and
    /// address-taken locals are memory-resident; other local scalars get
    /// pseudo-registers and generate no items.
    pub fn is_mem_resident(&self) -> bool {
        matches!(self.storage, Storage::Global) || self.ty.is_array() || self.address_taken
    }
}

/// A function signature, for call checking.
#[derive(Debug, Clone)]
pub struct FuncSig {
    pub ret: Type,
    pub params: Vec<Type>,
    /// Index into `Program::funcs`.
    pub index: u32,
    pub line: u32,
}

/// A loop bound as far as sema can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Const(i64),
    /// A loop-invariant symbol (e.g. `for (i = 0; i < n; i++)`).
    Sym(SymId),
    Unknown,
}

/// A recognized canonical (countable) loop.
#[derive(Debug, Clone)]
pub struct CanonLoop {
    /// The induction variable.
    pub ivar: SymId,
    pub lower: Bound,
    pub upper: Bound,
    /// True for `<=`, false for `<`.
    pub inclusive: bool,
    /// Positive step.
    pub step: i64,
}

impl CanonLoop {
    /// The constant trip count, when both bounds are constant.
    pub fn trip_count(&self) -> Option<i64> {
        match (self.lower, self.upper) {
            (Bound::Const(lo), Bound::Const(hi)) => {
                let hi = if self.inclusive { hi } else { hi - 1 };
                if hi < lo {
                    Some(0)
                } else {
                    Some((hi - lo) / self.step + 1)
                }
            }
            _ => None,
        }
    }
}

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    pub msg: String,
    pub line: u32,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SemaError {}

/// The result of semantic analysis over a whole [`Program`].
#[derive(Debug, Clone)]
pub struct Sema {
    /// All symbols, indexed by [`SymId`].
    pub syms: Vec<SymInfo>,
    /// Function signatures by name.
    pub func_sigs: HashMap<String, FuncSig>,
    /// Type of every expression, indexed by [`ExprId`]. Array-typed
    /// identifiers keep their array type here; consumers apply decay.
    pub expr_ty: Vec<Type>,
    /// Resolution of every `Ident` expression to its symbol.
    pub ident_sym: HashMap<ExprId, SymId>,
    /// Canonical-loop facts for `For` statements that qualify.
    pub loops: HashMap<StmtId, CanonLoop>,
    /// The symbol each `Decl` statement declared.
    pub decl_sym: HashMap<StmtId, SymId>,
    /// Global symbols in declaration order.
    pub globals: Vec<SymId>,
    /// Per function (by index): parameter symbols in order.
    pub func_params: Vec<Vec<SymId>>,
    /// Per function (by index): local symbols in declaration order.
    pub func_locals: Vec<Vec<SymId>>,
}

impl Sema {
    pub fn sym(&self, id: SymId) -> &SymInfo {
        &self.syms[id as usize]
    }

    pub fn ty_of(&self, e: &Expr) -> &Type {
        &self.expr_ty[e.id as usize]
    }

    /// Symbol of an `Ident` expression (panics if `e` is not an Ident that
    /// was resolved — a usage error in this codebase, not an input error).
    pub fn sym_of(&self, e: &Expr) -> SymId {
        self.ident_sym[&e.id]
    }

    /// The root symbol of an access path `a[i][j]`, `*p`, `x` — the variable
    /// whose storage is addressed, if syntactically evident.
    pub fn base_sym(&self, e: &Expr) -> Option<SymId> {
        match &e.kind {
            ExprKind::Ident(_) => self.ident_sym.get(&e.id).copied(),
            ExprKind::Index(b, _) => self.base_sym(b),
            ExprKind::Deref(p) => self.base_sym(p),
            _ => None,
        }
    }
}

/// Run semantic analysis.
pub fn analyze(prog: &Program) -> Result<Sema, SemaError> {
    let mut cx = Checker {
        sema: Sema {
            syms: Vec::new(),
            func_sigs: HashMap::new(),
            expr_ty: vec![Type::Void; prog.num_exprs as usize],
            ident_sym: HashMap::new(),
            loops: HashMap::new(),
            decl_sym: HashMap::new(),
            globals: Vec::new(),
            func_params: Vec::new(),
            func_locals: Vec::new(),
        },
        scopes: Vec::new(),
        cur_func: 0,
        cur_ret: Type::Void,
        loop_depth: 0,
    };
    cx.program(prog)?;
    Ok(cx.sema)
}

struct Checker {
    sema: Sema,
    scopes: Vec<HashMap<String, SymId>>,
    cur_func: u32,
    cur_ret: Type,
    loop_depth: u32,
}

impl Checker {
    fn err(&self, line: u32, msg: impl Into<String>) -> SemaError {
        SemaError { msg: msg.into(), line }
    }

    fn declare(
        &mut self,
        name: &str,
        ty: Type,
        storage: Storage,
        line: u32,
    ) -> Result<SymId, SemaError> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.contains_key(name) {
            return Err(SemaError { msg: format!("redefinition of `{name}`"), line });
        }
        let id = self.sema.syms.len() as SymId;
        self.sema.syms.push(SymInfo {
            name: name.to_string(),
            ty,
            storage,
            address_taken: false,
            line,
        });
        self.scopes.last_mut().unwrap().insert(name.to_string(), id);
        Ok(id)
    }

    fn lookup(&self, name: &str) -> Option<SymId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn program(&mut self, prog: &Program) -> Result<(), SemaError> {
        self.scopes.push(HashMap::new());
        for g in &prog.globals {
            if let Some(init) = &g.init {
                // Int globals cannot take a float initializer (lossy).
                if g.ty == Type::Int {
                    if let ConstInit::Double(_) = init {
                        return Err(self.err(g.line, "float initializer for int global"));
                    }
                }
                if g.ty.is_pointer() {
                    return Err(self.err(g.line, "pointer globals cannot have initializers"));
                }
            }
            let id = self.declare(&g.name, g.ty.clone(), Storage::Global, g.line)?;
            self.sema.globals.push(id);
        }
        // Collect signatures first so forward calls resolve.
        for (i, f) in prog.funcs.iter().enumerate() {
            if self.sema.func_sigs.contains_key(&f.name) {
                return Err(self.err(f.line, format!("redefinition of function `{}`", f.name)));
            }
            if self.lookup(&f.name).is_some() {
                return Err(self.err(
                    f.line,
                    format!("function `{}` conflicts with a global variable", f.name),
                ));
            }
            self.sema.func_sigs.insert(
                f.name.clone(),
                FuncSig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    index: i as u32,
                    line: f.line,
                },
            );
        }
        for (i, f) in prog.funcs.iter().enumerate() {
            self.func(i as u32, f)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn func(&mut self, index: u32, f: &FuncDef) -> Result<(), SemaError> {
        self.cur_func = index;
        self.cur_ret = f.ret.clone();
        self.scopes.push(HashMap::new());
        let mut params = Vec::new();
        for (pi, p) in f.params.iter().enumerate() {
            let id = self.declare(
                &p.name,
                p.ty.clone(),
                Storage::Param { func: index, index: pi },
                p.line,
            )?;
            params.push(id);
        }
        self.sema.func_params.push(params);
        self.sema.func_locals.push(Vec::new());
        self.block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), SemaError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    let ity = self.expr(init)?;
                    self.check_assignable(&d.ty, &ity, init.line)?;
                }
                let id = self.declare(
                    &d.name,
                    d.ty.clone(),
                    Storage::Local { func: self.cur_func },
                    s.line,
                )?;
                self.sema.func_locals[self.cur_func as usize].push(id);
                self.sema.decl_sym.insert(s.id, id);
            }
            StmtKind::Expr(e) => {
                self.expr(e)?;
            }
            StmtKind::Block(b) => self.block(b)?,
            StmtKind::If { cond, then_body, else_body } => {
                self.condition(cond)?;
                self.stmt(then_body)?;
                if let Some(e) = else_body {
                    self.stmt(e)?;
                }
            }
            StmtKind::While { cond, body } => {
                self.condition(cond)?;
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
            }
            StmtKind::DoWhile { body, cond } => {
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                self.condition(cond)?;
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(e) = init {
                    self.expr(e)?;
                }
                if let Some(e) = cond {
                    self.condition(e)?;
                }
                if let Some(e) = step {
                    self.expr(e)?;
                }
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                self.recognize_canonical(s, init, cond, step, body);
            }
            StmtKind::Return(val) => match (val, self.cur_ret.clone()) {
                (None, Type::Void) => {}
                (None, _) => {
                    return Err(self.err(s.line, "missing return value"));
                }
                (Some(_), Type::Void) => {
                    return Err(self.err(s.line, "void function returns a value"));
                }
                (Some(e), ret) => {
                    let ty = self.expr(e)?;
                    self.check_assignable(&ret, &ty, e.line)?;
                }
            },
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(self.err(s.line, "`break`/`continue` outside a loop"));
                }
            }
            StmtKind::Empty => {}
        }
        Ok(())
    }

    fn condition(&mut self, e: &Expr) -> Result<(), SemaError> {
        let ty = self.expr(e)?;
        let ty = ty.decayed();
        if !(ty.is_numeric() || ty.is_pointer()) {
            return Err(self.err(e.line, format!("condition has non-scalar type `{ty}`")));
        }
        Ok(())
    }

    /// Can a value of type `src` be stored into a slot of type `dst`?
    fn check_assignable(&self, dst: &Type, src: &Type, line: u32) -> Result<(), SemaError> {
        let src = src.decayed();
        let ok = match (dst, &src) {
            (Type::Int, Type::Int)
            | (Type::Int, Type::Double)
            | (Type::Double, Type::Int)
            | (Type::Double, Type::Double) => true,
            (Type::Ptr(a), Type::Ptr(b)) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(self.err(line, format!("cannot assign `{src}` to `{dst}`")))
        }
    }

    fn set_ty(&mut self, e: &Expr, ty: Type) -> Type {
        self.sema.expr_ty[e.id as usize] = ty.clone();
        ty
    }

    fn expr(&mut self, e: &Expr) -> Result<Type, SemaError> {
        let ty = match &e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::FloatLit(_) => Type::Double,
            ExprKind::Ident(name) => {
                let Some(id) = self.lookup(name) else {
                    return Err(self.err(e.line, format!("undefined variable `{name}`")));
                };
                self.sema.ident_sym.insert(e.id, id);
                self.sema.syms[id as usize].ty.clone()
            }
            ExprKind::Unary(op, a) => {
                let t = self.expr(a)?.decayed();
                match op {
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            return Err(self.err(e.line, format!("cannot negate `{t}`")));
                        }
                        t
                    }
                    UnOp::Not => {
                        if !(t.is_numeric() || t.is_pointer()) {
                            return Err(self.err(e.line, format!("cannot apply `!` to `{t}`")));
                        }
                        Type::Int
                    }
                    UnOp::BitNot => {
                        if t != Type::Int {
                            return Err(self.err(e.line, format!("cannot apply `~` to `{t}`")));
                        }
                        Type::Int
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a)?.decayed();
                let tb = self.expr(b)?.decayed();
                self.binary_type(*op, &ta, &tb, e.line)?
            }
            ExprKind::Index(base, idx) => {
                let tb = self.expr(base)?;
                let ti = self.expr(idx)?;
                if ti != Type::Int {
                    return Err(self.err(idx.line, format!("array index has type `{ti}`")));
                }
                match tb.element() {
                    Some(el) => el.clone(),
                    None => {
                        return Err(self.err(e.line, format!("cannot index a `{tb}`")));
                    }
                }
            }
            ExprKind::Deref(p) => {
                let tp = self.expr(p)?.decayed();
                match tp {
                    Type::Ptr(t) => (*t).clone(),
                    other => {
                        return Err(self.err(e.line, format!("cannot dereference `{other}`")));
                    }
                }
            }
            ExprKind::Addr(lv) => {
                let t = self.expr(lv)?;
                // Mark the root variable address-taken (this is what defeats
                // the pseudo-register assignment in the back-end).
                if let Some(sym) = self.sema.base_sym(lv) {
                    self.sema.syms[sym as usize].address_taken = true;
                }
                Type::Ptr(Box::new(t.decayed_elem_or_self()))
            }
            ExprKind::Assign(lhs, rhs) => {
                let tl = self.expr(lhs)?;
                if tl.is_array() {
                    return Err(self.err(e.line, "cannot assign to an array"));
                }
                let tr = self.expr(rhs)?;
                self.check_assignable(&tl, &tr, e.line)?;
                tl
            }
            ExprKind::CompoundAssign(op, lhs, rhs) => {
                let tl = self.expr(lhs)?;
                if tl.is_array() {
                    return Err(self.err(e.line, "cannot assign to an array"));
                }
                let tr = self.expr(rhs)?.decayed();
                let combined = self.binary_type(*op, &tl.decayed(), &tr, e.line)?;
                self.check_assignable(&tl, &combined, e.line)?;
                tl
            }
            ExprKind::IncDec(_, lv) => {
                let t = self.expr(lv)?;
                match t {
                    Type::Int | Type::Ptr(_) => t,
                    other => {
                        return Err(self.err(e.line, format!("cannot increment `{other}`")));
                    }
                }
            }
            ExprKind::Call(name, args) => {
                let Some(sig) = self.sema.func_sigs.get(name).cloned() else {
                    return Err(self.err(e.line, format!("call to undefined function `{name}`")));
                };
                if sig.params.len() != args.len() {
                    return Err(self.err(
                        e.line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, pty) in args.iter().zip(&sig.params) {
                    let at = self.expr(arg)?;
                    self.check_assignable(pty, &at, arg.line)?;
                }
                sig.ret
            }
        };
        Ok(self.set_ty(e, ty))
    }

    fn binary_type(&self, op: BinOp, ta: &Type, tb: &Type, line: u32) -> Result<Type, SemaError> {
        use BinOp::*;
        if op.is_boolean() {
            let cmp_ok = match (ta, tb) {
                (a, b) if a.is_numeric() && b.is_numeric() => true,
                (Type::Ptr(a), Type::Ptr(b)) => a == b || matches!(op, LogAnd | LogOr),
                (p, n) | (n, p) if p.is_pointer() && n.is_numeric() => {
                    matches!(op, LogAnd | LogOr)
                }
                _ => false,
            };
            if !cmp_ok {
                return Err(self.err(line, format!("cannot compare `{ta}` and `{tb}`")));
            }
            return Ok(Type::Int);
        }
        match op {
            Rem | Shl | Shr | BitAnd | BitOr | BitXor => {
                if *ta == Type::Int && *tb == Type::Int {
                    Ok(Type::Int)
                } else {
                    Err(self.err(line, format!("integer operator on `{ta}` and `{tb}`")))
                }
            }
            Add | Sub => match (ta, tb) {
                (Type::Ptr(_), Type::Int) => Ok(ta.clone()),
                (Type::Int, Type::Ptr(_)) if op == Add => Ok(tb.clone()),
                (Type::Ptr(a), Type::Ptr(b)) if op == Sub && a == b => Ok(Type::Int),
                (a, b) if a.is_numeric() && b.is_numeric() => Ok(if a.is_float() || b.is_float() {
                    Type::Double
                } else {
                    Type::Int
                }),
                _ => Err(self.err(line, format!("cannot apply `+`/`-` to `{ta}` and `{tb}`"))),
            },
            Mul | Div => {
                if ta.is_numeric() && tb.is_numeric() {
                    Ok(if ta.is_float() || tb.is_float() {
                        Type::Double
                    } else {
                        Type::Int
                    })
                } else {
                    Err(self.err(line, format!("cannot multiply `{ta}` and `{tb}`")))
                }
            }
            _ => unreachable!("boolean ops handled above"),
        }
    }

    /// Recognize `for (i = lo; i < hi; i += s)` with integer `i` that is not
    /// address-taken and not modified inside the body.
    fn recognize_canonical(
        &mut self,
        s: &Stmt,
        init: &Option<Expr>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Stmt,
    ) {
        let (Some(init), Some(cond), Some(step)) = (init, cond, step) else { return };
        // init: i = <bound>
        let ExprKind::Assign(lhs, lo) = &init.kind else { return };
        let ExprKind::Ident(_) = lhs.kind else { return };
        let Some(ivar) = self.sema.ident_sym.get(&lhs.id).copied() else { return };
        if self.sema.syms[ivar as usize].ty != Type::Int
            || self.sema.syms[ivar as usize].address_taken
        {
            return;
        }
        let lower = self.bound_of(lo);
        // cond: i < hi or i <= hi
        let ExprKind::Binary(cmp, cl, ch) = &cond.kind else { return };
        let inclusive = match cmp {
            BinOp::Lt => false,
            BinOp::Le => true,
            _ => return,
        };
        if !matches!(cl.kind, ExprKind::Ident(_)) {
            return;
        }
        if self.sema.ident_sym.get(&cl.id) != Some(&ivar) {
            return;
        }
        let upper = self.bound_of(ch);
        // step: i++, ++i, i += c, i = i + c
        let step_val = match &step.kind {
            ExprKind::IncDec(k, t) if k.is_inc() => {
                if self.sema.ident_sym.get(&t.id) != Some(&ivar) {
                    return;
                }
                1
            }
            ExprKind::CompoundAssign(BinOp::Add, t, c) => {
                if self.sema.ident_sym.get(&t.id) != Some(&ivar) {
                    return;
                }
                let ExprKind::IntLit(v) = c.kind else { return };
                if v <= 0 {
                    return;
                }
                v
            }
            ExprKind::Assign(t, r) => {
                if self.sema.ident_sym.get(&t.id) != Some(&ivar) {
                    return;
                }
                let ExprKind::Binary(BinOp::Add, a, c) = &r.kind else { return };
                if self.sema.ident_sym.get(&a.id) != Some(&ivar) {
                    return;
                }
                let ExprKind::IntLit(v) = c.kind else { return };
                if v <= 0 {
                    return;
                }
                v
            }
            _ => return,
        };
        // The body must not modify the induction variable.
        if self.body_modifies(body, ivar) {
            return;
        }
        // A symbolic bound must be loop-invariant: not modified in the body.
        for b in [lower, upper] {
            if let Bound::Sym(s) = b {
                if self.body_modifies(body, s) || self.sema.syms[s as usize].address_taken {
                    return;
                }
            }
        }
        self.sema
            .loops
            .insert(s.id, CanonLoop { ivar, lower, upper, inclusive, step: step_val });
    }

    fn bound_of(&self, e: &Expr) -> Bound {
        match &e.kind {
            ExprKind::IntLit(v) => Bound::Const(*v),
            ExprKind::Unary(UnOp::Neg, a) => {
                if let ExprKind::IntLit(v) = a.kind {
                    Bound::Const(-v)
                } else {
                    Bound::Unknown
                }
            }
            ExprKind::Ident(_) => match self.sema.ident_sym.get(&e.id) {
                Some(&s) if self.sema.syms[s as usize].ty == Type::Int => Bound::Sym(s),
                _ => Bound::Unknown,
            },
            _ => Bound::Unknown,
        }
    }

    /// Does `body` contain a write to symbol `sym`?
    fn body_modifies(&self, body: &Stmt, sym: SymId) -> bool {
        let mut modified = false;
        body.walk_stmts(&mut |s| {
            s.own_exprs(&mut |e| {
                e.walk(&mut |x| match &x.kind {
                    ExprKind::Assign(l, _)
                    | ExprKind::CompoundAssign(_, l, _)
                    | ExprKind::IncDec(_, l)
                        if matches!(l.kind, ExprKind::Ident(_))
                            && self.sema.ident_sym.get(&l.id) == Some(&sym) =>
                    {
                        modified = true;
                    }
                    _ => {}
                })
            })
        });
        modified
    }
}

impl Type {
    /// Helper for `&expr` typing: arrays decay so `&a` where `a: T[n]` gives
    /// `T*` of the first element in MiniC (a simplification of C semantics).
    fn decayed_elem_or_self(&self) -> Type {
        match self {
            Type::Array(elem, _) => (**elem).clone(),
            t => t.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sema_ok(src: &str) -> (Program, Sema) {
        let p = parse_program(src).unwrap();
        let s = analyze(&p).unwrap();
        (p, s)
    }

    fn sema_err(src: &str) -> SemaError {
        let p = parse_program(src).unwrap();
        analyze(&p).unwrap_err()
    }

    #[test]
    fn resolves_globals_locals_params() {
        let (_, s) = sema_ok("int g; int f(int p) { int l; l = g + p; return l; }");
        assert_eq!(s.globals.len(), 1);
        assert_eq!(s.func_params[0].len(), 1);
        assert_eq!(s.func_locals[0].len(), 1);
        assert_eq!(s.sym(s.globals[0]).storage, Storage::Global);
    }

    #[test]
    fn undefined_variable_rejected() {
        let e = sema_err("int main() { return x; }");
        assert!(e.msg.contains("undefined variable"));
    }

    #[test]
    fn undefined_function_rejected() {
        let e = sema_err("int main() { return f(); }");
        assert!(e.msg.contains("undefined function"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = sema_err("int f(int a) { return a; } int main() { return f(1, 2); }");
        assert!(e.msg.contains("argument"));
    }

    #[test]
    fn type_promotion_int_double() {
        let (p, s) = sema_ok("double d; int main() { int i; i = 1; d = i + 2.5; return i; }");
        // Find the `i + 2.5` expression and check its type.
        let mut found = false;
        for f in &p.funcs {
            for st in &f.body.stmts {
                st.walk_stmts(&mut |st| {
                    st.own_exprs(&mut |e| {
                        e.walk(&mut |x| {
                            if let ExprKind::Binary(BinOp::Add, _, _) = x.kind {
                                assert_eq!(*s.ty_of(x), Type::Double);
                                found = true;
                            }
                        })
                    })
                });
            }
        }
        assert!(found);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let (_, _s) = sema_ok("int a[10]; int main() { int *p; p = &a[0]; p = p + 3; return *p; }");
    }

    #[test]
    fn pointer_mismatch_rejected() {
        let e = sema_err("int i; double d; int main() { int *p; p = &d; return 0; }");
        assert!(e.msg.contains("cannot assign"));
    }

    #[test]
    fn address_taken_marks_root() {
        let (_, s) = sema_ok("int main() { int x; int y; int *p; p = &x; y = x; return y; }");
        let x = s.syms.iter().find(|v| v.name == "x").unwrap();
        let y = s.syms.iter().find(|v| v.name == "y").unwrap();
        assert!(x.address_taken);
        assert!(!y.address_taken);
        assert!(x.is_mem_resident());
        assert!(!y.is_mem_resident());
    }

    #[test]
    fn globals_and_arrays_are_mem_resident() {
        let (_, s) = sema_ok("int g; int main() { int a[4]; a[0] = g; return a[0]; }");
        assert!(s.sym(s.globals[0]).is_mem_resident());
        let a = s.syms.iter().find(|v| v.name == "a").unwrap();
        assert!(a.is_mem_resident());
    }

    #[test]
    fn canonical_loop_recognized() {
        let (p, s) = sema_ok(
            "int a[10]; int main() { int i; for (i = 0; i < 10; i++) a[i] = i; return 0; }",
        );
        assert_eq!(s.loops.len(), 1);
        let cl = s.loops.values().next().unwrap();
        assert_eq!(cl.lower, Bound::Const(0));
        assert_eq!(cl.upper, Bound::Const(10));
        assert!(!cl.inclusive);
        assert_eq!(cl.step, 1);
        assert_eq!(cl.trip_count(), Some(10));
        let _ = p;
    }

    #[test]
    fn canonical_loop_with_le_and_step() {
        let (_, s) = sema_ok(
            "int a[64]; int main() { int i; for (i = 2; i <= 20; i += 3) a[i] = i; return 0; }",
        );
        let cl = s.loops.values().next().unwrap();
        assert!(cl.inclusive);
        assert_eq!(cl.step, 3);
        assert_eq!(cl.trip_count(), Some(7));
    }

    #[test]
    fn symbolic_upper_bound() {
        let (_, s) = sema_ok(
            "int a[100]; int f(int n) { int i; for (i = 0; i < n; i++) a[i] = i; return 0; }",
        );
        let cl = s.loops.values().next().unwrap();
        assert!(matches!(cl.upper, Bound::Sym(_)));
        assert_eq!(cl.trip_count(), None);
    }

    #[test]
    fn loop_modifying_ivar_not_canonical() {
        let (_, s) = sema_ok(
            "int a[10]; int main() { int i; for (i = 0; i < 10; i++) { a[i] = i; i = i + 1; } return 0; }",
        );
        assert!(s.loops.is_empty());
    }

    #[test]
    fn loop_with_modified_symbolic_bound_not_canonical() {
        let (_, s) = sema_ok(
            "int a[10]; int main() { int i; int n; n = 10; for (i = 0; i < n; i++) { a[i] = i; n = n - 1; } return 0; }",
        );
        assert!(s.loops.is_empty());
    }

    #[test]
    fn downward_loop_not_canonical() {
        let (_, s) =
            sema_ok("int a[10]; int main() { int i; for (i = 9; i > 0; i--) a[i] = i; return 0; }");
        assert!(s.loops.is_empty());
    }

    #[test]
    fn nested_loops_both_recognized() {
        let (_, s) = sema_ok(
            "double m[8][8]; int main() { int i; int j; for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) m[i][j] = 0.0; return 0; }",
        );
        assert_eq!(s.loops.len(), 2);
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = sema_err("int main() { break; return 0; }");
        assert!(e.msg.contains("outside a loop"));
    }

    #[test]
    fn return_type_checked() {
        assert!(sema_err("void f() { return 3; } int main(){return 0;}")
            .msg
            .contains("void function"));
        assert!(sema_err("int f() { return; } int main(){return 0;}")
            .msg
            .contains("missing return value"));
    }

    #[test]
    fn shadowing_in_nested_scope() {
        let (_, s) = sema_ok("int main() { int x; x = 1; { int x; x = 2; } return x; }");
        assert_eq!(s.syms.iter().filter(|v| v.name == "x").count(), 2);
    }

    #[test]
    fn redefinition_in_same_scope_rejected() {
        let e = sema_err("int main() { int x; int x; return 0; }");
        assert!(e.msg.contains("redefinition"));
    }

    #[test]
    fn array_param_decays_and_indexes() {
        let (_, _s) = sema_ok(
            "double sum(double v[], int n) { int i; double s; s = 0.0; for (i = 0; i < n; i++) s = s + v[i]; return s; } int main() { double a[5]; return 0; }",
        );
    }

    #[test]
    fn integer_ops_reject_doubles() {
        let e = sema_err("int main() { double d; int x; d = 1.0; x = d % 2; return x; }");
        assert!(e.msg.contains("integer operator"));
    }

    #[test]
    fn base_sym_through_index_and_deref() {
        let (p, s) = sema_ok("int a[10]; int main() { int *q; q = &a[0]; return a[1] + *q; }");
        let mut bases = Vec::new();
        for f in &p.funcs {
            for st in &f.body.stmts {
                st.walk_stmts(&mut |st| {
                    st.own_exprs(&mut |e| {
                        e.walk(&mut |x| {
                            if matches!(x.kind, ExprKind::Index(..) | ExprKind::Deref(_)) {
                                if let Some(b) = s.base_sym(x) {
                                    bases.push(s.sym(b).name.clone());
                                }
                            }
                        })
                    })
                });
            }
        }
        assert!(bases.contains(&"a".to_string()));
        assert!(bases.contains(&"q".to_string()));
    }
}
