//! Recursive-descent parser for MiniC.
//!
//! Produces the [`crate::ast`] tree with dense node identities and per-node
//! source lines. The grammar is a C subset; see the crate docs for scope.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::token::{TokKind, Token};
use crate::types::Type;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub msg: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.msg, line: e.line, col: e.col }
    }
}

/// Parse a full MiniC translation unit.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    Parser::new(toks).program()
}

/// Maximum expression nesting depth. Each level costs a dozen host stack
/// frames through the precedence ladder; the cap keeps adversarial inputs
/// (e.g. ten thousand open parens) a clean parse error instead of a stack
/// overflow.
const MAX_EXPR_DEPTH: u32 = 48;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    next_expr: ExprId,
    next_stmt: StmtId,
    expr_depth: u32,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser { toks, pos: 0, next_expr: 0, next_stmt: 0, expr_depth: 0 }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_kind(&self) -> &TokKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, k: &TokKind) -> bool {
        self.peek_kind() == k
    }

    fn eat(&mut self, k: &TokKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokKind) -> Result<Token, ParseError> {
        if self.at(k) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                k.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn err_here(&self, msg: String) -> ParseError {
        let t = self.peek();
        ParseError { msg, line: t.line, col: t.col }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), ParseError> {
        match self.peek_kind().clone() {
            TokKind::Ident(s) => {
                let t = self.bump();
                Ok((s, t.line))
            }
            other => Err(self.err_here(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn new_expr(&mut self, line: u32, kind: ExprKind) -> Expr {
        let id = self.next_expr;
        self.next_expr += 1;
        Expr { id, line, kind }
    }

    fn new_stmt(&mut self, line: u32, kind: StmtKind) -> Stmt {
        let id = self.next_stmt;
        self.next_stmt += 1;
        Stmt { id, line, kind }
    }

    // ---- declarations -----------------------------------------------------

    fn base_type(&mut self) -> Result<Type, ParseError> {
        match self.peek_kind() {
            TokKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokKind::KwDouble => {
                self.bump();
                Ok(Type::Double)
            }
            TokKind::KwVoid => {
                self.bump();
                Ok(Type::Void)
            }
            other => Err(self.err_here(format!("expected type, found {}", other.describe()))),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek_kind(), TokKind::KwInt | TokKind::KwDouble | TokKind::KwVoid)
    }

    /// Parse `'*'* IDENT ('[' INT ']')*` applying pointers/arrays to `base`.
    fn declarator(&mut self, base: &Type) -> Result<(String, Type, u32), ParseError> {
        let mut ty = base.clone();
        while self.eat(&TokKind::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        let (name, line) = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat(&TokKind::LBracket) {
            match self.peek_kind().clone() {
                TokKind::IntLit(n) if n > 0 => {
                    self.bump();
                    dims.push(n as usize);
                }
                other => {
                    return Err(self.err_here(format!(
                        "expected positive array length, found {}",
                        other.describe()
                    )))
                }
            }
            self.expect(&TokKind::RBracket)?;
        }
        for n in dims.into_iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok((name, ty, line))
    }

    fn program(mut self) -> Result<Program, ParseError> {
        let mut globals = Vec::new();
        let mut funcs = Vec::new();
        while !self.at(&TokKind::Eof) {
            let base = self.base_type()?;
            // Look ahead: `type '*'* IDENT '('` is a function definition.
            let save = self.pos;
            let mut stars = 0;
            while self.at(&TokKind::Star) {
                self.bump();
                stars += 1;
            }
            let is_func = matches!(self.peek_kind(), TokKind::Ident(_))
                && *self.peek2_kind() == TokKind::LParen;
            self.pos = save;
            if is_func {
                let mut ret = base;
                for _ in 0..stars {
                    self.bump();
                    ret = Type::Ptr(Box::new(ret));
                }
                funcs.push(self.func_def(ret)?);
            } else {
                if base == Type::Void {
                    return Err(self.err_here("`void` variables are not allowed".into()));
                }
                loop {
                    let (name, ty, line) = self.declarator(&base)?;
                    let init = if self.eat(&TokKind::Assign) {
                        Some(self.const_init(&ty)?)
                    } else {
                        None
                    };
                    globals.push(GlobalDecl { name, ty, line, init });
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokKind::Semi)?;
            }
        }
        Ok(Program {
            globals,
            funcs,
            num_exprs: self.next_expr,
            num_stmts: self.next_stmt,
        })
    }

    fn const_init(&mut self, ty: &Type) -> Result<ConstInit, ParseError> {
        if ty.is_array() {
            return Err(self.err_here("array initializers are not supported".into()));
        }
        let neg = self.eat(&TokKind::Minus);
        let init = match self.peek_kind().clone() {
            TokKind::IntLit(v) => {
                self.bump();
                let v = if neg { -v } else { v };
                if ty.is_float() {
                    ConstInit::Double(v as f64)
                } else {
                    ConstInit::Int(v)
                }
            }
            TokKind::FloatLit(v) => {
                self.bump();
                let v = if neg { -v } else { v };
                ConstInit::Double(v)
            }
            other => {
                return Err(self.err_here(format!(
                    "expected constant initializer, found {}",
                    other.describe()
                )))
            }
        };
        Ok(init)
    }

    fn func_def(&mut self, ret: Type) -> Result<FuncDef, ParseError> {
        let (name, line) = self.expect_ident()?;
        self.expect(&TokKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokKind::RParen) {
            // Allow `(void)`.
            if self.at(&TokKind::KwVoid) && *self.peek2_kind() == TokKind::RParen {
                self.bump();
            } else {
                loop {
                    let base = self.base_type()?;
                    if base == Type::Void {
                        return Err(self.err_here("`void` parameter not allowed here".into()));
                    }
                    let mut ty = base;
                    while self.eat(&TokKind::Star) {
                        ty = Type::Ptr(Box::new(ty));
                    }
                    let (pname, pline) = self.expect_ident()?;
                    // Array parameters: `int a[]`, `int a[10]`, `int a[10][20]`.
                    // The first dimension decays; inner dimensions shape the
                    // pointee so subscript lowering can linearize.
                    let mut dims: Vec<Option<usize>> = Vec::new();
                    while self.eat(&TokKind::LBracket) {
                        match self.peek_kind().clone() {
                            TokKind::RBracket => dims.push(None),
                            TokKind::IntLit(n) if n > 0 => {
                                self.bump();
                                dims.push(Some(n as usize));
                            }
                            other => {
                                return Err(self.err_here(format!(
                                    "expected array length or `]`, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        self.expect(&TokKind::RBracket)?;
                    }
                    if !dims.is_empty() {
                        // Inner dims must be concrete.
                        let mut inner = ty;
                        for d in dims[1..].iter().rev() {
                            match d {
                                Some(n) => inner = Type::Array(Box::new(inner), *n),
                                None => {
                                    return Err(self.err_here(
                                        "inner array dimensions must have a length".into(),
                                    ))
                                }
                            }
                        }
                        ty = Type::Ptr(Box::new(inner));
                    }
                    params.push(ParamDecl { name: pname, ty, line: pline });
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(&TokKind::RParen)?;
        let body = self.block()?;
        Ok(FuncDef { name, ret, params, body, line })
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokKind::RBrace) {
            if self.at(&TokKind::Eof) {
                return Err(self.err_here("unexpected end of input in block".into()));
            }
            self.stmt_into(&mut stmts)?;
        }
        self.expect(&TokKind::RBrace)?;
        Ok(Block { stmts })
    }

    /// Parse one statement; local declarations may expand to several `Decl`
    /// statements (one per declarator), so this appends into `out`.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        if self.is_type_start() {
            let base = self.base_type()?;
            if base == Type::Void {
                return Err(self.err_here("`void` variables are not allowed".into()));
            }
            loop {
                let (name, ty, line) = self.declarator(&base)?;
                let init = if self.eat(&TokKind::Assign) {
                    if ty.is_array() {
                        return Err(self.err_here("array initializers are not supported".into()));
                    }
                    Some(self.expr()?)
                } else {
                    None
                };
                let s = self.new_stmt(line, StmtKind::Decl(LocalDecl { name, ty, init }));
                out.push(s);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
            self.expect(&TokKind::Semi)?;
            return Ok(());
        }
        let s = self.stmt()?;
        out.push(s);
        Ok(())
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        match self.peek_kind() {
            TokKind::LBrace => {
                let b = self.block()?;
                Ok(self.new_stmt(line, StmtKind::Block(b)))
            }
            TokKind::KwIf => {
                self.bump();
                self.expect(&TokKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokKind::RParen)?;
                let then_body = Box::new(self.stmt()?);
                let else_body = if self.eat(&TokKind::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(self.new_stmt(line, StmtKind::If { cond, then_body, else_body }))
            }
            TokKind::KwWhile => {
                self.bump();
                self.expect(&TokKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(self.new_stmt(line, StmtKind::While { cond, body }))
            }
            TokKind::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&TokKind::KwWhile)?;
                self.expect(&TokKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokKind::RParen)?;
                self.expect(&TokKind::Semi)?;
                Ok(self.new_stmt(line, StmtKind::DoWhile { body, cond }))
            }
            TokKind::KwFor => {
                self.bump();
                self.expect(&TokKind::LParen)?;
                let init = if self.at(&TokKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokKind::Semi)?;
                let cond = if self.at(&TokKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokKind::Semi)?;
                let step = if self.at(&TokKind::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(self.new_stmt(line, StmtKind::For { init, cond, step, body }))
            }
            TokKind::KwReturn => {
                self.bump();
                let val = if self.at(&TokKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokKind::Semi)?;
                Ok(self.new_stmt(line, StmtKind::Return(val)))
            }
            TokKind::KwBreak => {
                self.bump();
                self.expect(&TokKind::Semi)?;
                Ok(self.new_stmt(line, StmtKind::Break))
            }
            TokKind::KwContinue => {
                self.bump();
                self.expect(&TokKind::Semi)?;
                Ok(self.new_stmt(line, StmtKind::Continue))
            }
            TokKind::Semi => {
                self.bump();
                Ok(self.new_stmt(line, StmtKind::Empty))
            }
            _ => {
                let e = self.expr()?;
                self.expect(&TokKind::Semi)?;
                Ok(self.new_stmt(line, StmtKind::Expr(e)))
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return Err(self.err_here("expression too deeply nested".into()));
        }
        self.expr_depth += 1;
        let r = self.assignment();
        self.expr_depth -= 1;
        r
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        let op = match self.peek_kind() {
            TokKind::Assign => None,
            TokKind::PlusAssign => Some(BinOp::Add),
            TokKind::MinusAssign => Some(BinOp::Sub),
            TokKind::StarAssign => Some(BinOp::Mul),
            TokKind::SlashAssign => Some(BinOp::Div),
            TokKind::PercentAssign => Some(BinOp::Rem),
            _ => return Ok(lhs),
        };
        let line = self.peek().line;
        if !lhs.is_lvalue() {
            return Err(self.err_here("left side of assignment is not an lvalue".into()));
        }
        self.bump();
        let rhs = self.assignment()?;
        let kind = match op {
            None => ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
            Some(b) => ExprKind::CompoundAssign(b, Box::new(lhs), Box::new(rhs)),
        };
        Ok(self.new_expr(line, kind))
    }

    /// Binary-operator precedence levels, loosest first.
    fn bin_op_at(&self, level: usize) -> Option<BinOp> {
        let k = self.peek_kind();
        let op = match (level, k) {
            (0, TokKind::PipePipe) => BinOp::LogOr,
            (1, TokKind::AmpAmp) => BinOp::LogAnd,
            (2, TokKind::Pipe) => BinOp::BitOr,
            (3, TokKind::Caret) => BinOp::BitXor,
            (4, TokKind::Amp) => BinOp::BitAnd,
            (5, TokKind::EqEq) => BinOp::Eq,
            (5, TokKind::NotEq) => BinOp::Ne,
            (6, TokKind::Lt) => BinOp::Lt,
            (6, TokKind::Le) => BinOp::Le,
            (6, TokKind::Gt) => BinOp::Gt,
            (6, TokKind::Ge) => BinOp::Ge,
            (7, TokKind::Shl) => BinOp::Shl,
            (7, TokKind::Shr) => BinOp::Shr,
            (8, TokKind::Plus) => BinOp::Add,
            (8, TokKind::Minus) => BinOp::Sub,
            (9, TokKind::Star) => BinOp::Mul,
            (9, TokKind::Slash) => BinOp::Div,
            (9, TokKind::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    const MAX_LEVEL: usize = 9;

    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        if level > Self::MAX_LEVEL {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.bin_op_at(level) {
            let line = self.peek().line;
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = self.new_expr(line, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.peek().line;
        match self.peek_kind() {
            TokKind::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(self.new_expr(line, ExprKind::Unary(UnOp::Neg, Box::new(e))))
            }
            TokKind::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(self.new_expr(line, ExprKind::Unary(UnOp::Not, Box::new(e))))
            }
            TokKind::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(self.new_expr(line, ExprKind::Unary(UnOp::BitNot, Box::new(e))))
            }
            TokKind::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(self.new_expr(line, ExprKind::Deref(Box::new(e))))
            }
            TokKind::Amp => {
                self.bump();
                let e = self.unary()?;
                if !e.is_lvalue() {
                    return Err(self.err_here("`&` requires an lvalue".into()));
                }
                Ok(self.new_expr(line, ExprKind::Addr(Box::new(e))))
            }
            TokKind::PlusPlus => {
                self.bump();
                let e = self.unary()?;
                if !e.is_lvalue() {
                    return Err(self.err_here("`++` requires an lvalue".into()));
                }
                Ok(self.new_expr(line, ExprKind::IncDec(IncDec::PreInc, Box::new(e))))
            }
            TokKind::MinusMinus => {
                self.bump();
                let e = self.unary()?;
                if !e.is_lvalue() {
                    return Err(self.err_here("`--` requires an lvalue".into()));
                }
                Ok(self.new_expr(line, ExprKind::IncDec(IncDec::PreDec, Box::new(e))))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let line = self.peek().line;
            match self.peek_kind() {
                TokKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&TokKind::RBracket)?;
                    e = self.new_expr(line, ExprKind::Index(Box::new(e), Box::new(idx)));
                }
                TokKind::PlusPlus => {
                    self.bump();
                    if !e.is_lvalue() {
                        return Err(self.err_here("`++` requires an lvalue".into()));
                    }
                    e = self.new_expr(line, ExprKind::IncDec(IncDec::PostInc, Box::new(e)));
                }
                TokKind::MinusMinus => {
                    self.bump();
                    if !e.is_lvalue() {
                        return Err(self.err_here("`--` requires an lvalue".into()));
                    }
                    e = self.new_expr(line, ExprKind::IncDec(IncDec::PostDec, Box::new(e)));
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.peek().line;
        match self.peek_kind().clone() {
            TokKind::IntLit(v) => {
                self.bump();
                Ok(self.new_expr(line, ExprKind::IntLit(v)))
            }
            TokKind::FloatLit(v) => {
                self.bump();
                Ok(self.new_expr(line, ExprKind::FloatLit(v)))
            }
            TokKind::Ident(name) => {
                self.bump();
                if self.eat(&TokKind::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&TokKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokKind::RParen)?;
                    Ok(self.new_expr(line, ExprKind::Call(name, args)))
                } else {
                    Ok(self.new_expr(line, ExprKind::Ident(name)))
                }
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err_here(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn parse_minimal_main() {
        let p = parse_ok("int main() { return 0; }");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].ret, Type::Int);
    }

    #[test]
    fn parse_globals_with_arrays_and_init() {
        let p = parse_ok(
            "int a[10][20];\ndouble x = 1.5, y = -2.0;\nint n = -3;\nint main(){return 0;}",
        );
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].ty.array_dims(), vec![10, 20]);
        assert_eq!(p.globals[1].init, Some(ConstInit::Double(1.5)));
        assert_eq!(p.globals[2].init, Some(ConstInit::Double(-2.0)));
        assert_eq!(p.globals[3].init, Some(ConstInit::Int(-3)));
    }

    #[test]
    fn parse_pointer_params_and_array_decay() {
        let p = parse_ok("void f(int *p, double a[], int m[4][8]) { }");
        let f = &p.funcs[0];
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::Int)));
        assert_eq!(f.params[1].ty, Type::Ptr(Box::new(Type::Double)));
        assert_eq!(f.params[2].ty, Type::Ptr(Box::new(Type::Array(Box::new(Type::Int), 8))));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_ok("int main() { int x; x = 1 + 2 * 3; return x; }");
        let body = &p.funcs[0].body.stmts;
        let StmtKind::Expr(e) = &body[1].kind else { panic!() };
        let ExprKind::Assign(_, rhs) = &e.kind else { panic!() };
        let ExprKind::Binary(BinOp::Add, _, r) = &rhs.kind else {
            panic!("expected + at top: {:?}", rhs.kind)
        };
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse_ok("int g; int h; int main() { g = h = 1; return g; }");
        let body = &p.funcs[0].body.stmts;
        let StmtKind::Expr(e) = &body[0].kind else { panic!() };
        let ExprKind::Assign(l, r) = &e.kind else { panic!() };
        assert!(matches!(l.kind, ExprKind::Ident(_)));
        assert!(matches!(r.kind, ExprKind::Assign(_, _)));
    }

    #[test]
    fn multi_declarator_splits_into_stmts() {
        let p = parse_ok("int main() { int a = 1, b, c = 2; return a; }");
        let body = &p.funcs[0].body.stmts;
        assert_eq!(body.len(), 4);
        assert!(matches!(&body[0].kind, StmtKind::Decl(d) if d.name == "a" && d.init.is_some()));
        assert!(matches!(&body[1].kind, StmtKind::Decl(d) if d.name == "b" && d.init.is_none()));
        assert!(matches!(&body[2].kind, StmtKind::Decl(d) if d.name == "c"));
    }

    #[test]
    fn nested_index_parses_left_to_right() {
        let p = parse_ok("int a[4][5]; int main() { return a[1][2]; }");
        let StmtKind::Return(Some(e)) = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Index(inner, _) = &e.kind else { panic!() };
        assert!(matches!(inner.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn for_loop_parses_all_parts() {
        let p =
            parse_ok("int main() { int i; int s = 0; for (i = 0; i < 10; i++) s += i; return s; }");
        let body = &p.funcs[0].body.stmts;
        let StmtKind::For { init, cond, step, .. } = &body[2].kind else { panic!() };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn for_loop_parts_optional() {
        let p = parse_ok("int main() { for (;;) break; return 0; }");
        let StmtKind::For { init, cond, step, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn assignment_to_rvalue_rejected() {
        assert!(parse_program("int main() { 3 = 4; return 0; }").is_err());
        assert!(parse_program("int main() { int x; (x+1) = 4; return 0; }").is_err());
    }

    #[test]
    fn addr_of_rvalue_rejected() {
        assert!(parse_program("int main() { int x; x = &3; }").is_err());
    }

    #[test]
    fn void_variable_rejected() {
        assert!(parse_program("void v; int main() { return 0; }").is_err());
        assert!(parse_program("int main() { void v; return 0; }").is_err());
    }

    #[test]
    fn calls_with_args() {
        let p =
            parse_ok("int f(int a, int b) { return a + b; } int main() { return f(1, f(2, 3)); }");
        let StmtKind::Return(Some(e)) = &p.funcs[1].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call(name, args) = &e.kind else { panic!() };
        assert_eq!(name, "f");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn void_param_list() {
        let p = parse_ok("int f(void) { return 1; } int main() { return f(); }");
        assert!(p.funcs[0].params.is_empty());
    }

    #[test]
    fn expr_ids_are_dense_and_unique() {
        let p = parse_ok("int main() { int x = 1 + 2 * 3; return x; }");
        let mut seen = vec![false; p.num_exprs as usize];
        for f in &p.funcs {
            for s in &f.body.stmts {
                s.own_exprs(&mut |e| {
                    e.walk(&mut |x| {
                        assert!(!seen[x.id as usize], "duplicate expr id");
                        seen[x.id as usize] = true;
                    })
                });
            }
        }
        assert!(seen.iter().all(|&b| b), "gap in expr ids");
    }

    #[test]
    fn do_while_parses() {
        let p = parse_ok("int main() { int i = 0; do { i++; } while (i < 3); return i; }");
        assert!(matches!(&p.funcs[0].body.stmts[1].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn error_messages_carry_position() {
        let e = parse_program("int main() {\n  return 0\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("expected `;`"));
    }
}
