//! The memory-access enumeration contract (ITEMGEN's ground rules).
//!
//! Section 3.1.1 of the paper: *"To guarantee that the mapping between the
//! generated memory access items and the GCC RTL instructions is correct,
//! the RTL generation rules in GCC must be considered in the HLI generation
//! by SUIF."* Items are matched to back-end memory references by (source
//! line, order within the line), so the front-end must enumerate accesses in
//! exactly the order the back-end will emit them.
//!
//! This module is that single point of truth. [`walk_function`] enumerates
//! every memory access (and call) a function performs, in back-end emission
//! order, applying the paper's rules:
//!
//! * **Pseudo-register rule** — at `-O1` and above, local scalars whose
//!   address is never taken live in pseudo-registers and generate *no*
//!   memory accesses; globals, arrays, pointer dereferences, and
//!   address-taken locals do.
//! * **Parameter-passing rule** — the first [`NUM_ARG_REGS`] scalar
//!   arguments travel in registers (evaluating a memory operand emits its
//!   ordinary load); arguments beyond that are written to the stack (an
//!   extra store that corresponds to no source-level access). At the callee
//!   entry, stack-passed parameters are loaded back, and address-taken
//!   parameters are spilled to their stack slot.
//! * **Return-value rule** — scalar returns travel in the value register and
//!   emit nothing (MiniC has no struct returns).
//!
//! The front-end's ITEMGEN consumes these events directly; the back-end's
//! lowerer is written to emit memory references in the same order, and
//! property tests in `hli-backend` verify the two agree event-for-event.

use crate::ast::*;
use crate::sema::{Sema, SymId};

/// Number of scalar argument registers in the target ABI.
pub const NUM_ARG_REGS: usize = 4;

/// What kind of memory traffic an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Load,
    Store,
    Call,
}

/// What location an event touches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// A scalar variable that lives in memory (global or address-taken).
    Var(SymId),
    /// An element of a declared array: base symbol plus the `Index`
    /// expression that computes the element (subscripts hang off it).
    ArrayElem(SymId, ExprId),
    /// An access through a pointer value. The root symbol is recorded when
    /// syntactically evident (`p[i]`, `*p` → `p`); the expression is the
    /// `Deref`/`Index` node performing the access.
    PtrAccess(Option<SymId>, ExprId),
    /// ABI store of argument `index` to the outgoing-arguments stack area.
    StackArg { callee: String, index: usize },
    /// ABI load of stack-passed parameter `index` at function entry.
    StackParamEntry { index: usize },
    /// The call instruction itself (the paper's "call" item).
    Call { callee: String },
}

/// One enumerated memory access or call, in back-end emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// Source line the access belongs to (line-table key).
    pub line: u32,
    pub kind: AccessKind,
    pub path: AccessPath,
    /// The expression performing the access, when one exists (ABI events at
    /// function entry have none).
    pub expr: Option<ExprId>,
}

/// Enumerate all memory events of `f` in back-end emission order.
pub fn walk_function(f: &FuncDef, sema: &Sema) -> Vec<MemEvent> {
    let mut w = Walker { sema, out: Vec::new() };
    w.entry_events(f);
    w.block(&f.body);
    w.out
}

/// Peel a (possibly nested) `Index` chain whose ultimate base is a declared
/// array variable. Returns the base symbol and the subscript expressions,
/// outermost dimension first. Returns `None` when the base is a pointer or
/// is not a plain identifier.
pub fn resolve_array_access<'a>(e: &'a Expr, sema: &Sema) -> Option<(SymId, Vec<&'a Expr>)> {
    let mut subs: Vec<&'a Expr> = Vec::new();
    let mut cur = e;
    loop {
        match &cur.kind {
            ExprKind::Index(base, idx) => {
                subs.push(idx);
                cur = base;
            }
            ExprKind::Ident(_) => {
                let sym = sema.ident_sym.get(&cur.id).copied()?;
                if !sema.sym(sym).ty.is_array() {
                    return None;
                }
                subs.reverse();
                return Some((sym, subs));
            }
            _ => return None,
        }
    }
}

struct Walker<'a> {
    sema: &'a Sema,
    out: Vec<MemEvent>,
}

impl<'a> Walker<'a> {
    fn emit(&mut self, line: u32, kind: AccessKind, path: AccessPath, expr: Option<ExprId>) {
        self.out.push(MemEvent { line, kind, path, expr });
    }

    /// ABI events at function entry: loads of stack-passed parameters and
    /// spills of address-taken parameters, in parameter order.
    fn entry_events(&mut self, f: &FuncDef) {
        let idx = self.sema.func_sigs[&f.name].index as usize;
        let params = &self.sema.func_params[idx];
        for (i, &sym) in params.iter().enumerate() {
            if i >= NUM_ARG_REGS {
                self.emit(f.line, AccessKind::Load, AccessPath::StackParamEntry { index: i }, None);
            }
            if self.sema.sym(sym).is_mem_resident() {
                self.emit(f.line, AccessKind::Store, AccessPath::Var(sym), None);
            }
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    self.rvalue(init);
                    let sym = self.sema.decl_sym[&s.id];
                    if self.sema.sym(sym).is_mem_resident() {
                        self.emit(s.line, AccessKind::Store, AccessPath::Var(sym), None);
                    }
                }
            }
            StmtKind::Expr(e) => self.rvalue(e),
            StmtKind::Block(b) => self.block(b),
            StmtKind::If { cond, then_body, else_body } => {
                self.rvalue(cond);
                self.stmt(then_body);
                if let Some(e) = else_body {
                    self.stmt(e);
                }
            }
            StmtKind::While { cond, body } => {
                // Lowering shape: Lcond: cond; brf exit; body; goto Lcond.
                self.rvalue(cond);
                self.stmt(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmt(body);
                self.rvalue(cond);
            }
            StmtKind::For { init, cond, step, body } => {
                // Lowering shape: init; Lcond: cond; brf exit; body; step;
                // goto Lcond — but the static per-line order of the header's
                // memory references is init, cond, step because the step
                // block is emitted after the body (later in the RTL chain)
                // yet grouped under the same header line *after* init and
                // cond. The back-end lowerer emits in this same shape.
                if let Some(e) = init {
                    self.rvalue(e);
                }
                if let Some(e) = cond {
                    self.rvalue(e);
                }
                self.stmt(body);
                if let Some(e) = step {
                    self.rvalue(e);
                }
            }
            StmtKind::Return(Some(e)) => self.rvalue(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
        }
    }

    /// Is this lvalue expression a memory access (vs. a pseudo-register)?
    /// Returns the access path if so.
    fn lvalue_path(&self, e: &Expr) -> Option<AccessPath> {
        match &e.kind {
            ExprKind::Ident(_) => {
                let sym = self.sema.ident_sym[&e.id];
                let info = self.sema.sym(sym);
                if info.ty.is_array() {
                    // Bare array name: an address, not an access.
                    None
                } else if info.is_mem_resident() {
                    Some(AccessPath::Var(sym))
                } else {
                    None
                }
            }
            ExprKind::Index(..) => {
                // Partial indexing of a multi-dim array yields an address.
                if self.sema.ty_of(e).is_array() {
                    return None;
                }
                match resolve_array_access(e, self.sema) {
                    Some((sym, _)) => Some(AccessPath::ArrayElem(sym, e.id)),
                    None => Some(AccessPath::PtrAccess(self.sema.base_sym(e), e.id)),
                }
            }
            ExprKind::Deref(_) => Some(AccessPath::PtrAccess(self.sema.base_sym(e), e.id)),
            _ => None,
        }
    }

    /// Emit the events of computing an lvalue's *address* (subscripts and
    /// pointer-base loads), without touching the designated location.
    fn lvalue_address(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => {}
            ExprKind::Index(base, idx) => {
                // Address of base, then subscript value. For a chain
                // a[i][j] this yields i's events then j's events.
                self.lvalue_address_or_rvalue_base(base);
                self.rvalue(idx);
            }
            ExprKind::Deref(p) => self.rvalue(p),
            _ => unreachable!("address of non-lvalue"),
        }
    }

    /// Base of an `Index`: if it is itself an array-designating expression,
    /// walk only its address; if it is a pointer-valued expression, walk it
    /// as an rvalue (which may load the pointer from memory).
    fn lvalue_address_or_rvalue_base(&mut self, base: &Expr) {
        let is_array_designator = matches!(
            &base.kind,
            ExprKind::Ident(_) | ExprKind::Index(..) if self.sema.ty_of(base).is_array()
        );
        if is_array_designator {
            if let ExprKind::Index(b, i) = &base.kind {
                self.lvalue_address_or_rvalue_base(b);
                self.rvalue(i);
            }
            // Bare array ident: no events.
        } else {
            self.rvalue(base);
        }
    }

    /// Emit the events of evaluating `e` as an rvalue.
    fn rvalue(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) => {}
            ExprKind::Ident(_) => {
                if self.sema.ty_of(e).is_array() {
                    return; // decays to an address: no traffic
                }
                if let Some(path) = self.lvalue_path(e) {
                    self.emit(e.line, AccessKind::Load, path, Some(e.id));
                }
            }
            ExprKind::Unary(_, a) => self.rvalue(a),
            ExprKind::Binary(_, a, b) => {
                self.rvalue(a);
                self.rvalue(b);
            }
            ExprKind::Index(..) => {
                if self.sema.ty_of(e).is_array() {
                    // Partial index: address only.
                    self.lvalue_address(e);
                    return;
                }
                self.lvalue_address(e);
                let path = self.lvalue_path(e).expect("indexed scalar is a memory access");
                self.emit(e.line, AccessKind::Load, path, Some(e.id));
            }
            ExprKind::Deref(_) => {
                self.lvalue_address(e);
                let path = self.lvalue_path(e).expect("deref is a memory access");
                self.emit(e.line, AccessKind::Load, path, Some(e.id));
            }
            ExprKind::Addr(lv) => self.lvalue_address(lv),
            ExprKind::Assign(lhs, rhs) => {
                // Contract: RHS first, then LHS address, then the store.
                self.rvalue(rhs);
                self.lvalue_address(lhs);
                if let Some(path) = self.lvalue_path(lhs) {
                    self.emit(e.line, AccessKind::Store, path, Some(lhs.id));
                }
            }
            ExprKind::CompoundAssign(_, lhs, rhs) => {
                // Contract: LHS address, load old value, RHS, store.
                self.lvalue_address(lhs);
                let path = self.lvalue_path(lhs);
                if let Some(p) = path.clone() {
                    self.emit(e.line, AccessKind::Load, p, Some(lhs.id));
                }
                self.rvalue(rhs);
                if let Some(p) = path {
                    self.emit(e.line, AccessKind::Store, p, Some(lhs.id));
                }
            }
            ExprKind::IncDec(_, lv) => {
                self.lvalue_address(lv);
                if let Some(p) = self.lvalue_path(lv) {
                    self.emit(e.line, AccessKind::Load, p.clone(), Some(lv.id));
                    self.emit(e.line, AccessKind::Store, p, Some(lv.id));
                }
            }
            ExprKind::Call(name, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.rvalue(a);
                    if i >= NUM_ARG_REGS {
                        self.emit(
                            e.line,
                            AccessKind::Store,
                            AccessPath::StackArg { callee: name.clone(), index: i },
                            Some(a.id),
                        );
                    }
                }
                self.emit(
                    e.line,
                    AccessKind::Call,
                    AccessPath::Call { callee: name.clone() },
                    Some(e.id),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ast;

    fn events(src: &str, func: &str) -> Vec<(u32, AccessKind, String)> {
        let (p, s) = compile_to_ast(src).unwrap();
        let f = p.func(func).unwrap();
        walk_function(f, &s)
            .into_iter()
            .map(|ev| {
                let desc = match ev.path {
                    AccessPath::Var(sym) => format!("var:{}", s.sym(sym).name),
                    AccessPath::ArrayElem(sym, _) => format!("elem:{}", s.sym(sym).name),
                    AccessPath::PtrAccess(root, _) => format!(
                        "ptr:{}",
                        root.map(|r| s.sym(r).name.clone()).unwrap_or_else(|| "?".into())
                    ),
                    AccessPath::StackArg { callee, index } => format!("stackarg:{callee}:{index}"),
                    AccessPath::StackParamEntry { index } => format!("stackparam:{index}"),
                    AccessPath::Call { callee } => format!("call:{callee}"),
                };
                (ev.line, ev.kind, desc)
            })
            .collect()
    }

    use AccessKind::*;

    #[test]
    fn pseudo_register_rule_suppresses_local_scalars() {
        let ev = events("int main() { int x; int y; x = 1; y = x + 2; return y; }", "main");
        assert!(ev.is_empty(), "register-resident locals emit nothing: {ev:?}");
    }

    #[test]
    fn globals_load_and_store() {
        let ev = events("int g; int main() { g = g + 1; return g; }", "main");
        assert_eq!(
            ev,
            vec![
                (1, Load, "var:g".into()),
                (1, Store, "var:g".into()),
                (1, Load, "var:g".into()),
            ]
        );
    }

    #[test]
    fn assignment_order_rhs_then_lhs() {
        let ev = events(
            "int a[10]; int b[10]; int main() { int i; i = 1; a[i] = b[i+1]; return 0; }",
            "main",
        );
        assert_eq!(ev, vec![(1, Load, "elem:b".into()), (1, Store, "elem:a".into())]);
    }

    #[test]
    fn compound_assign_load_then_store() {
        let ev = events("int g; int h; int main() { g += h; return 0; }", "main");
        assert_eq!(
            ev,
            vec![
                (1, Load, "var:g".into()),
                (1, Load, "var:h".into()),
                (1, Store, "var:g".into()),
            ]
        );
    }

    #[test]
    fn incdec_on_memory_is_load_store() {
        let ev = events("int g; int main() { g++; return 0; }", "main");
        assert_eq!(ev, vec![(1, Load, "var:g".into()), (1, Store, "var:g".into())]);
    }

    #[test]
    fn incdec_on_register_local_is_silent() {
        let ev = events("int main() { int i; i = 0; i++; return i; }", "main");
        assert!(ev.is_empty());
    }

    #[test]
    fn subscript_loads_precede_element_access() {
        // a[b[0]] = 1  →  load b[0], store a[...]
        let ev = events("int a[4]; int b[4]; int main() { a[b[0]] = 1; return 0; }", "main");
        assert_eq!(ev, vec![(1, Load, "elem:b".into()), (1, Store, "elem:a".into())]);
    }

    #[test]
    fn multidim_subscripts_in_order() {
        let ev = events(
            "int m[4][5]; int x[2]; int y[2]; int main() { int t; t = m[x[0]][y[0]]; return t; }",
            "main",
        );
        assert_eq!(
            ev,
            vec![
                (1, Load, "elem:x".into()),
                (1, Load, "elem:y".into()),
                (1, Load, "elem:m".into()),
            ]
        );
    }

    #[test]
    fn pointer_deref_loads_pointer_then_target() {
        let ev = events("int *gp; int g; int main() { gp = &g; return *gp; }", "main");
        assert_eq!(
            ev,
            vec![
                (1, Store, "var:gp".into()),
                (1, Load, "var:gp".into()),
                (1, Load, "ptr:gp".into()),
            ]
        );
    }

    #[test]
    fn local_pointer_deref_suppresses_pointer_load() {
        let ev = events("int g; int main() { int *p; p = &g; return *p; }", "main");
        assert_eq!(ev, vec![(1, Load, "ptr:p".into())]);
    }

    #[test]
    fn address_of_emits_no_access() {
        let ev = events("int a[4]; int main() { int *p; p = &a[2]; return 0; }", "main");
        assert!(ev.is_empty(), "&a[const] computes an address only: {ev:?}");
    }

    #[test]
    fn address_of_with_memory_subscript() {
        let ev = events(
            "int a[4]; int b[4]; int main() { int *p; p = &a[b[0]]; return 0; }",
            "main",
        );
        assert_eq!(ev, vec![(1, Load, "elem:b".into())]);
    }

    #[test]
    fn address_taken_local_becomes_memory() {
        let ev = events("int main() { int x; int *p; p = &x; x = 3; return x; }", "main");
        assert_eq!(ev, vec![(1, Store, "var:x".into()), (1, Load, "var:x".into())]);
    }

    #[test]
    fn call_items_and_register_args() {
        let ev = events(
            "int g; int f(int a, int b) { return a + b; } int main() { return f(g, 2); }",
            "main",
        );
        assert_eq!(ev, vec![(1, Load, "var:g".into()), (1, Call, "call:f".into())]);
    }

    #[test]
    fn stack_args_beyond_four_emit_stores() {
        let ev = events(
            "int f(int a, int b, int c, int d, int e, int g) { return a+b+c+d+e+g; } \
             int main() { return f(1, 2, 3, 4, 5, 6); }",
            "main",
        );
        assert_eq!(
            ev,
            vec![
                (1, Store, "stackarg:f:4".into()),
                (1, Store, "stackarg:f:5".into()),
                (1, Call, "call:f".into()),
            ]
        );
    }

    #[test]
    fn callee_entry_loads_stack_params() {
        let ev = events(
            "int f(int a, int b, int c, int d, int e, int g) { return a+b+c+d+e+g; } \
             int main() { return f(1, 2, 3, 4, 5, 6); }",
            "f",
        );
        assert_eq!(
            ev,
            vec![
                (1, Load, "stackparam:4".into()),
                (1, Load, "stackparam:5".into()),
            ]
        );
    }

    #[test]
    fn address_taken_param_spills_at_entry() {
        let ev = events(
            "void g(int *p) { *p = 1; } int f(int a) { g(&a); return a; } int main() { return f(3); }",
            "f",
        );
        assert_eq!(ev[0], (1, Store, "var:a".into()));
    }

    #[test]
    fn for_header_order_init_cond_step() {
        let ev = events(
            "int g; int a[10]; int main() { int i; for (i = g; i < g; i += 1) a[i] = 0; return 0; }",
            "main",
        );
        // init loads g, cond loads g, then body store, then (step: nothing).
        assert_eq!(
            ev,
            vec![
                (1, Load, "var:g".into()),
                (1, Load, "var:g".into()),
                (1, Store, "elem:a".into()),
            ]
        );
    }

    #[test]
    fn while_cond_before_body_dowhile_after() {
        let ev = events(
            "int g;\nint main() {\n int i; i = 0;\n while (g) { i++; break; }\n do { i++; }\n while (g);\n return i; }",
            "main",
        );
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].1, Load);
        assert_eq!(ev[1].1, Load);
        assert!(ev[0].0 < ev[1].0, "while cond line precedes do-while cond line");
    }

    #[test]
    fn short_circuit_operands_enumerated_statically() {
        let ev = events("int g; int h; int main() { return g && h; }", "main");
        assert_eq!(ev, vec![(1, Load, "var:g".into()), (1, Load, "var:h".into())]);
    }

    #[test]
    fn resolve_array_access_on_nested_index() {
        let (p, s) = compile_to_ast("int m[4][5]; int main() { return m[1][2]; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        let (sym, subs) = resolve_array_access(e, &s).unwrap();
        assert_eq!(s.sym(sym).name, "m");
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn resolve_array_access_rejects_pointer_base() {
        let (p, s) =
            compile_to_ast("void f(int *p) { p[0] = 1; } int main() { return 0; }").unwrap();
        let StmtKind::Expr(e) = &p.funcs[0].body.stmts[0].kind else { panic!() };
        let ExprKind::Assign(lhs, _) = &e.kind else { panic!() };
        assert!(resolve_array_access(lhs, &s).is_none());
    }

    #[test]
    fn decl_init_of_address_taken_local_stores() {
        let ev = events("int g; int main() { int x = g; int *p; p = &x; return *p; }", "main");
        assert_eq!(
            ev,
            vec![
                (1, Load, "var:g".into()),
                (1, Store, "var:x".into()),
                (1, Load, "ptr:p".into()),
            ]
        );
    }
}
