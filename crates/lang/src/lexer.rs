//! The MiniC lexer.
//!
//! A hand-written scanner producing [`Token`]s with 1-based line/column
//! positions. Supports `//` and `/* */` comments; block comments may span
//! lines (line accounting stays correct, which matters because HLI items are
//! keyed by line).

use crate::token::{TokKind, Token};
use std::fmt;

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub msg: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a full source string. Returns the token stream terminated by a
/// single [`TokKind::Eof`] token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { msg: msg.into(), line: self.line, col: self.col }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let (sl, sc) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(LexError {
                                msg: "unterminated block comment".into(),
                                line: sl,
                                col: sc,
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let c = self.peek();
            if c == 0 {
                out.push(Token { kind: TokKind::Eof, line, col });
                return Ok(out);
            }
            let kind = if c.is_ascii_digit() {
                self.number()?
            } else if c.is_ascii_alphabetic() || c == b'_' {
                self.ident_or_kw()
            } else {
                self.operator()?
            };
            out.push(Token { kind, line, col });
        }
    }

    fn number(&mut self) -> Result<TokKind, LexError> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `1end` is `1` then ident).
                self.pos = save.0;
                self.line = save.1;
                self.col = save.2;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(TokKind::FloatLit)
                .map_err(|e| self.err(format!("bad float literal `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokKind::IntLit)
                .map_err(|e| self.err(format!("bad integer literal `{text}`: {e}")))
        }
    }

    fn ident_or_kw(&mut self) -> TokKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match text {
            "int" => TokKind::KwInt,
            "double" | "float" => TokKind::KwDouble,
            "void" => TokKind::KwVoid,
            "if" => TokKind::KwIf,
            "else" => TokKind::KwElse,
            "while" => TokKind::KwWhile,
            "for" => TokKind::KwFor,
            "return" => TokKind::KwReturn,
            "break" => TokKind::KwBreak,
            "continue" => TokKind::KwContinue,
            "do" => TokKind::KwDo,
            _ => TokKind::Ident(text.to_string()),
        }
    }

    fn operator(&mut self) -> Result<TokKind, LexError> {
        let c = self.bump();
        let kind = match c {
            b'(' => TokKind::LParen,
            b')' => TokKind::RParen,
            b'{' => TokKind::LBrace,
            b'}' => TokKind::RBrace,
            b'[' => TokKind::LBracket,
            b']' => TokKind::RBracket,
            b';' => TokKind::Semi,
            b',' => TokKind::Comma,
            b'~' => TokKind::Tilde,
            b'^' => TokKind::Caret,
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    TokKind::PlusPlus
                }
                b'=' => {
                    self.bump();
                    TokKind::PlusAssign
                }
                _ => TokKind::Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    TokKind::MinusMinus
                }
                b'=' => {
                    self.bump();
                    TokKind::MinusAssign
                }
                _ => TokKind::Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokKind::StarAssign
                } else {
                    TokKind::Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokKind::SlashAssign
                } else {
                    TokKind::Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokKind::PercentAssign
                } else {
                    TokKind::Percent
                }
            }
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    TokKind::AmpAmp
                } else {
                    TokKind::Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    TokKind::PipePipe
                } else {
                    TokKind::Pipe
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokKind::Le
                }
                b'<' => {
                    self.bump();
                    TokKind::Shl
                }
                _ => TokKind::Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokKind::Ge
                }
                b'>' => {
                    self.bump();
                    TokKind::Shr
                }
                _ => TokKind::Gt,
            },
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokKind::EqEq
                } else {
                    TokKind::Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokKind::NotEq
                } else {
                    TokKind::Bang
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_empty() {
        assert_eq!(kinds(""), vec![TokKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokKind::Eof]);
    }

    #[test]
    fn lex_keywords_and_idents() {
        assert_eq!(
            kinds("int foo while whilex"),
            vec![
                TokKind::KwInt,
                TokKind::Ident("foo".into()),
                TokKind::KwWhile,
                TokKind::Ident("whilex".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn float_keyword_maps_to_double() {
        assert_eq!(kinds("float"), vec![TokKind::KwDouble, TokKind::Eof]);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 7e-2 9"),
            vec![
                TokKind::IntLit(42),
                TokKind::FloatLit(3.5),
                TokKind::FloatLit(1000.0),
                TokKind::FloatLit(0.07),
                TokKind::IntLit(9),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn number_followed_by_ident_not_exponent() {
        assert_eq!(
            kinds("1end"),
            vec![
                TokKind::IntLit(1),
                TokKind::Ident("end".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn lex_compound_operators() {
        assert_eq!(
            kinds("+= ++ -- <= >= == != << >> && || ="),
            vec![
                TokKind::PlusAssign,
                TokKind::PlusPlus,
                TokKind::MinusMinus,
                TokKind::Le,
                TokKind::Ge,
                TokKind::EqEq,
                TokKind::NotEq,
                TokKind::Shl,
                TokKind::Shr,
                TokKind::AmpAmp,
                TokKind::PipePipe,
                TokKind::Assign,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines_and_comments() {
        let toks = lex("a\nb /* c\nd */ e // f\ng").unwrap();
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("e".into(), 3),
                ("g".into(), 4)
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let e = lex("x /* oops").unwrap_err();
        assert!(e.msg.contains("unterminated"));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn columns_are_one_based() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].col, 4);
    }
}
