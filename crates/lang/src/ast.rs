//! The MiniC abstract syntax tree.
//!
//! Every expression and statement carries a stable numeric identity
//! ([`ExprId`], [`StmtId`]) assigned densely by the parser, plus the 1-based
//! source line it starts on. Analyses (types, symbol resolution, affine
//! subscripts, memory items) attach facts to those identities in side tables
//! instead of mutating the tree, mirroring how SUIF annotations decorate its
//! IR in the paper.

use crate::types::Type;

/// Dense identity of an expression node within one [`Program`].
pub type ExprId = u32;
/// Dense identity of a statement node within one [`Program`].
pub type StmtId = u32;

/// A whole translation unit.
#[derive(Debug, Clone)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FuncDef>,
    /// One past the highest [`ExprId`] assigned (side tables size to this).
    pub num_exprs: u32,
    /// One past the highest [`StmtId`] assigned.
    pub num_stmts: u32,
}

impl Program {
    /// Find a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// A file-scope variable declaration.
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    pub name: String,
    pub ty: Type,
    pub line: u32,
    /// Optional scalar initializer (constant only, as in C static init).
    pub init: Option<ConstInit>,
}

/// Constant initializer for a global scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstInit {
    Int(i64),
    Double(f64),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    pub name: String,
    pub ret: Type,
    pub params: Vec<ParamDecl>,
    pub body: Block,
    /// Line of the `name(` in the definition.
    pub line: u32,
}

/// A formal parameter. Array-typed parameters decay to pointers (as in C);
/// the parser performs the decay so `ty` is never `Type::Array` here.
#[derive(Debug, Clone)]
pub struct ParamDecl {
    pub name: String,
    pub ty: Type,
    pub line: u32,
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement node.
#[derive(Debug, Clone)]
pub struct Stmt {
    pub id: StmtId,
    pub line: u32,
    pub kind: StmtKind,
}

/// A local variable declaration (one declarator; the parser splits
/// comma-separated declarations into several `Decl` statements).
#[derive(Debug, Clone)]
pub struct LocalDecl {
    pub name: String,
    pub ty: Type,
    /// Optional initializer expression.
    pub init: Option<Expr>,
}

/// Statement kinds.
#[derive(Debug, Clone)]
pub enum StmtKind {
    Decl(LocalDecl),
    Expr(Expr),
    Block(Block),
    If {
        cond: Expr,
        then_body: Box<Stmt>,
        else_body: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    /// A C `for`. All three header parts are optional expressions; the
    /// canonical-loop recognizer in `sema` decides whether this is a
    /// countable loop (and therefore an HLI region with analyzable bounds).
    For {
        init: Option<Expr>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    /// `;`
    Empty,
}

/// An expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    pub id: ExprId,
    pub line: u32,
    pub kind: ExprKind,
}

/// Binary operators (arithmetic, bitwise, comparison, logical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit `&&`.
    LogAnd,
    /// Short-circuit `||`.
    LogOr,
}

impl BinOp {
    /// True for operators that always yield `int` (comparisons, logicals).
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::LogAnd
                | BinOp::LogOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Pre/post increment/decrement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncDec {
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

impl IncDec {
    pub fn is_inc(self) -> bool {
        matches!(self, IncDec::PreInc | IncDec::PostInc)
    }
    pub fn is_pre(self) -> bool {
        matches!(self, IncDec::PreInc | IncDec::PreDec)
    }
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    /// A variable reference; resolution to a symbol happens in sema.
    Ident(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `base[index]` — multi-dimensional accesses nest: `a[i][j]` is
    /// `Index(Index(a, i), j)`.
    Index(Box<Expr>, Box<Expr>),
    /// `*ptr`
    Deref(Box<Expr>),
    /// `&lvalue`
    Addr(Box<Expr>),
    /// `lhs = rhs`
    Assign(Box<Expr>, Box<Expr>),
    /// `lhs op= rhs` (desugared semantics: load-modify-store).
    CompoundAssign(BinOp, Box<Expr>, Box<Expr>),
    /// `++x`, `x--`, ...
    IncDec(IncDec, Box<Expr>),
    /// Direct call `name(args...)`. MiniC has no function pointers.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Is this expression syntactically an lvalue?
    pub fn is_lvalue(&self) -> bool {
        matches!(self.kind, ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Deref(_))
    }

    /// Walk this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Ident(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::Deref(a)
            | ExprKind::Addr(a)
            | ExprKind::IncDec(_, a) => a.walk(f),
            ExprKind::Binary(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::CompoundAssign(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }
}

impl Stmt {
    /// Walk this statement and all nested statements, pre-order.
    pub fn walk_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    s.walk_stmts(f);
                }
            }
            StmtKind::If { then_body, else_body, .. } => {
                then_body.walk_stmts(f);
                if let Some(e) = else_body {
                    e.walk_stmts(f);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => body.walk_stmts(f),
            _ => {}
        }
    }

    /// Walk every expression directly contained in this statement (not in
    /// nested statements).
    pub fn own_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match &self.kind {
            StmtKind::Decl(d) => {
                if let Some(e) = &d.init {
                    f(e);
                }
            }
            StmtKind::Expr(e) => f(e),
            StmtKind::If { cond, .. } => f(cond),
            StmtKind::While { cond, .. } | StmtKind::DoWhile { cond, .. } => f(cond),
            StmtKind::For { init, cond, step, .. } => {
                if let Some(e) = init {
                    f(e);
                }
                if let Some(e) = cond {
                    f(e);
                }
                if let Some(e) = step {
                    f(e);
                }
            }
            StmtKind::Return(Some(e)) => f(e),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: ExprId, kind: ExprKind) -> Expr {
        Expr { id, line: 1, kind }
    }

    #[test]
    fn lvalue_classification() {
        assert!(e(0, ExprKind::Ident("x".into())).is_lvalue());
        assert!(e(0, ExprKind::Deref(Box::new(e(1, ExprKind::Ident("p".into()))))).is_lvalue());
        assert!(!e(0, ExprKind::IntLit(3)).is_lvalue());
        assert!(!e(0, ExprKind::Addr(Box::new(e(1, ExprKind::Ident("x".into()))))).is_lvalue());
    }

    #[test]
    fn walk_visits_all_subexprs() {
        let tree = e(
            0,
            ExprKind::Binary(
                BinOp::Add,
                Box::new(e(1, ExprKind::IntLit(1))),
                Box::new(e(2, ExprKind::Call("f".into(), vec![e(3, ExprKind::IntLit(2))]))),
            ),
        );
        let mut ids = Vec::new();
        tree.walk(&mut |x| ids.push(x.id));
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn boolean_ops() {
        assert!(BinOp::Lt.is_boolean());
        assert!(BinOp::LogAnd.is_boolean());
        assert!(!BinOp::Add.is_boolean());
    }

    #[test]
    fn incdec_helpers() {
        assert!(IncDec::PreInc.is_inc() && IncDec::PreInc.is_pre());
        assert!(!IncDec::PostDec.is_pre());
        assert!(!IncDec::PostDec.is_inc());
    }
}
