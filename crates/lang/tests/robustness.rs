//! Robustness properties: the front door (lexer/parser/sema) must reject
//! garbage with errors, never panics. Property-style but dependency-free:
//! inputs come from a seeded xorshift64 stream, so every run checks the
//! same cases deterministically.

use hli_lang::lexer::lex;
use hli_lang::parser::parse_program;

/// xorshift64 — tiny deterministic PRNG for test-input generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn range(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }

    /// A random string of printable-and-control chars, length < `max_len`.
    fn noise(&mut self, max_len: usize) -> String {
        let len = self.range(max_len);
        (0..len).filter_map(|_| char::from_u32(self.next() as u32 % 0xD800)).collect()
    }

    /// A "token soup": random draws from `vocab`, space-joined.
    fn soup(&mut self, vocab: &[&str], max_toks: usize) -> String {
        let n = self.range(max_toks);
        (0..n).map(|_| vocab[self.range(vocab.len())]).collect::<Vec<_>>().join(" ")
    }
}

#[test]
fn lexer_never_panics() {
    let mut rng = Rng(0x1111_2222_3333_4444);
    for _ in 0..512 {
        let _ = lex(&rng.noise(200));
    }
}

#[test]
fn lexer_handles_ascii_noise() {
    let mut rng = Rng(0x5555_6666_7777_8888);
    for _ in 0..512 {
        let bytes: Vec<u8> = (0..rng.range(200)).map(|_| (rng.next() % 128) as u8).collect();
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = lex(text);
        }
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = Rng(0x9999_aaaa_bbbb_cccc);
    for _ in 0..512 {
        let _ = parse_program(&rng.noise(200));
    }
}

#[test]
fn parser_never_panics_on_token_soup() {
    const VOCAB: &[&str] = &[
        "int", "double", "void", "if", "else", "while", "for", "return", "break", "do", "(", ")",
        "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "=", "==", "&&", "&", "x", "42", "3.5",
        "++", "%", "<", ">>",
    ];
    let mut rng = Rng(0xdddd_eeee_ffff_0001);
    for _ in 0..512 {
        let src = rng.soup(VOCAB, 60);
        let _ = parse_program(&src);
    }
}

#[test]
fn sema_never_panics_on_parsed_soup() {
    const VOCAB: &[&str] = &[
        "int", "g", "(", ")", "{", "}", ";", "=", "1", "main", "return", "x", "[", "]", "4", "*",
        "&",
    ];
    let mut rng = Rng(0x1357_9bdf_2468_ace0);
    for _ in 0..512 {
        let src = rng.soup(VOCAB, 40);
        if let Ok(prog) = parse_program(&src) {
            let _ = hli_lang::sema::analyze(&prog);
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    let nested = |n: usize| {
        let mut src = String::from("int main() { return ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('1');
        for _ in 0..n {
            src.push(')');
        }
        src.push_str("; }");
        src
    };
    // Reasonable nesting parses; adversarial nesting is a clean error
    // (the parser caps recursion depth), never a stack overflow.
    assert!(parse_program(&nested(40)).is_ok());
    let e = parse_program(&nested(10_000)).unwrap_err();
    assert!(e.msg.contains("deeply nested"), "{e}");
}

#[test]
fn long_statement_lists_parse() {
    let mut src = String::from("int g;\nint main() {\n");
    for i in 0..2000 {
        src.push_str(&format!("g = g + {i};\n"));
    }
    src.push_str("return g; }\n");
    let p = parse_program(&src).unwrap();
    let s = hli_lang::sema::analyze(&p).unwrap();
    let r = hli_lang::interp::run_program(&p, &s).unwrap();
    assert_eq!(r.ret, (0..2000).sum::<i64>());
}
