//! Robustness properties: the front door (lexer/parser/sema) must reject
//! garbage with errors, never panics.

use hli_lang::lexer::lex;
use hli_lang::parser::parse_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = lex(&s);
    }

    #[test]
    fn lexer_handles_ascii_noise(s in prop::collection::vec(0u8..128, 0..200)) {
        if let Ok(text) = std::str::from_utf8(&s) {
            let _ = lex(text);
        }
    }

    #[test]
    fn parser_never_panics(s in "\\PC*") {
        let _ = parse_program(&s);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("int"), Just("double"), Just("void"), Just("if"), Just("else"),
                Just("while"), Just("for"), Just("return"), Just("break"), Just("do"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(";"), Just(","), Just("+"), Just("-"), Just("*"), Just("/"),
                Just("="), Just("=="), Just("&&"), Just("&"), Just("x"), Just("42"),
                Just("3.5"), Just("++"), Just("%"), Just("<"), Just(">>"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
    }

    #[test]
    fn sema_never_panics_on_parsed_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("int"), Just("g"), Just("("), Just(")"), Just("{"), Just("}"),
                Just(";"), Just("="), Just("1"), Just("main"), Just("return"),
                Just("x"), Just("["), Just("]"), Just("4"), Just("*"), Just("&"),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        if let Ok(prog) = parse_program(&src) {
            let _ = hli_lang::sema::analyze(&prog);
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    let nested = |n: usize| {
        let mut src = String::from("int main() { return ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('1');
        for _ in 0..n {
            src.push(')');
        }
        src.push_str("; }");
        src
    };
    // Reasonable nesting parses; adversarial nesting is a clean error
    // (the parser caps recursion depth), never a stack overflow.
    assert!(parse_program(&nested(40)).is_ok());
    let e = parse_program(&nested(10_000)).unwrap_err();
    assert!(e.msg.contains("deeply nested"), "{e}");
}

#[test]
fn long_statement_lists_parse() {
    let mut src = String::from("int g;\nint main() {\n");
    for i in 0..2000 {
        src.push_str(&format!("g = g + {i};\n"));
    }
    src.push_str("return g; }\n");
    let p = parse_program(&src).unwrap();
    let s = hli_lang::sema::analyze(&p).unwrap();
    let r = hli_lang::interp::run_program(&p, &s).unwrap();
    assert_eq!(r.ret, (0..2000).sum::<i64>());
}
