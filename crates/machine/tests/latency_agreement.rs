//! The drift-bug regression (ISSUE: "kill the scheduler/simulator latency
//! drift"): the scheduler used to carry its own hand-copied latency table
//! whose `imul`/`idiv`/`fdiv` entries (8/36/36) had silently drifted from
//! the R4600 model's (10/42/32), corrupting every `est_cycles` estimate.
//!
//! Now both sides read one table — [`MachineBackend::class_latency`] —
//! and this test pins the contract on **every target**:
//!
//! 1. the static classification (`hli_backend::op_class` on RTL ops) and
//!    the dynamic classification (`DynKind::class` on trace events) land
//!    each Op/DynKind pair in the same priced class;
//! 2. the scheduler-side per-op latency (`MachineBackend::latency` over
//!    the lowered `LirOp`) equals the simulator-side per-event latency
//!    (`class_latency` of the event's class) — for every pair, on every
//!    registered backend;
//! 3. the simulators *behave* at those latencies (a load-use pair stalls
//!    for exactly `class_latency(Load) - 1` on the in-order cores);
//! 4. the R4600 values are the model's, not the drifted copies.

use hli_backend::lir::{lir_function, op_class};
use hli_backend::lower::lower_program;
use hli_backend::rtl::{CmpOp, FBinOp, IBinOp, MemRef, Op};
use hli_lang::compile_to_ast;
use hli_lir::{LirOp, OpClass, OperandKind};
use hli_machine::{
    all_backends, backend_by_name, r4600_cycles, w4_cycles, DynInsn, DynKind, MachineBackend,
    R4600Config, W4Config,
};

/// Representative static/dynamic pairs, mirroring the executor's Op →
/// DynKind emission (`hli_machine::exec`): if the executor ever reclasses
/// an op, or `op_class` diverges from `DynKind::class`, a pair here
/// breaks.
fn rep_pairs() -> Vec<(Op, DynKind)> {
    vec![
        (Op::LiI(0, 3), DynKind::Simple),
        (Op::LiF(0, 1.5), DynKind::Simple),
        (Op::Move(0, 1), DynKind::Simple),
        (Op::La(0, hli_backend::rtl::BaseAddr::Sym(0), 0), DynKind::Simple),
        (Op::IBin(IBinOp::Add, 0, 1, 2), DynKind::IAlu),
        (Op::IBinI(IBinOp::Sub, 0, 1, 3), DynKind::IAlu),
        (Op::IBin(IBinOp::Mul, 0, 1, 2), DynKind::IMul),
        (Op::IBinI(IBinOp::Mul, 0, 1, 3), DynKind::IMul),
        (Op::IBin(IBinOp::Div, 0, 1, 2), DynKind::IDiv),
        (Op::IBin(IBinOp::Rem, 0, 1, 2), DynKind::IDiv),
        (Op::IBinI(IBinOp::Rem, 0, 1, 3), DynKind::IDiv),
        (Op::FBin(FBinOp::Add, 0, 1, 2), DynKind::FAdd),
        (Op::FBin(FBinOp::Sub, 0, 1, 2), DynKind::FAdd),
        (Op::FBin(FBinOp::Mul, 0, 1, 2), DynKind::FMul),
        (Op::FBin(FBinOp::Div, 0, 1, 2), DynKind::FDiv),
        (Op::ICmp(CmpOp::Lt, 0, 1, 2), DynKind::IAlu),
        (Op::FCmp(CmpOp::Ge, 0, 1, 2), DynKind::FAdd),
        (Op::CvtIF(0, 1), DynKind::FAdd),
        (Op::CvtFI(0, 1), DynKind::FAdd),
        (Op::Load(0, MemRef::sym(0)), DynKind::Load),
        (Op::Store(MemRef::sym(0), 0), DynKind::Store),
        (
            Op::Call { dst: None, func: "f".into(), args: Vec::new() },
            DynKind::Call,
        ),
        (Op::Ret(None), DynKind::Ret),
        (Op::Jump(0), DynKind::Branch { taken: true }),
        (Op::Branch(CmpOp::Eq, 0, 1, 0), DynKind::Branch { taken: false }),
    ]
}

fn lir_op_of(op: &Op) -> LirOp {
    LirOp {
        id: 0,
        line: 0,
        class: op_class(op),
        dst: OperandKind::None,
        srcs: [OperandKind::None; 3],
        n_srcs: 0,
    }
}

#[test]
fn scheduler_and_simulator_share_one_table_on_every_target() {
    let backends = all_backends();
    assert_eq!(backends.len(), 3, "r4600, r10000, w4");
    for (op, kind) in rep_pairs() {
        assert_eq!(
            op_class(&op),
            kind.class(),
            "static and dynamic classification disagree for {op:?} / {kind:?}"
        );
        for mach in backends {
            let sched_side = mach.latency(&lir_op_of(&op));
            let sim_side = mach.class_latency(kind.class());
            assert_eq!(
                sched_side,
                sim_side,
                "latency drift on {}: scheduler prices {op:?} at {sched_side}, \
                 simulator prices {kind:?} at {sim_side}",
                mach.name()
            );
        }
    }
}

#[test]
fn every_opclass_is_priced_on_every_target() {
    for mach in all_backends() {
        for class in OpClass::ALL {
            let lat = mach.class_latency(class);
            assert!(
                lat >= 1,
                "{}: class {class:?} must cost at least one cycle, got {lat}",
                mach.name()
            );
        }
    }
}

#[test]
fn r4600_values_are_the_models_not_the_drifted_copies() {
    // The old scheduler table said imul=8, idiv=36, fdiv=36. The machine
    // model says 10/42/32 — and since the fix there is only one table.
    let cfg = R4600Config::default();
    let mach = backend_by_name("r4600").unwrap();
    assert_eq!(mach.class_latency(OpClass::IMul), cfg.imul);
    assert_eq!(mach.class_latency(OpClass::IMul), 10);
    assert_eq!(mach.class_latency(OpClass::IDiv), cfg.idiv);
    assert_eq!(mach.class_latency(OpClass::IDiv), 42);
    assert_eq!(mach.class_latency(OpClass::FDiv), cfg.fdiv);
    assert_eq!(mach.class_latency(OpClass::FDiv), 32);
    assert_eq!(mach.class_latency(OpClass::Load), cfg.load);
    assert_eq!(mach.class_latency(OpClass::FAdd), cfg.fadd);
    assert_eq!(mach.class_latency(OpClass::FMul), cfg.fmul);
}

/// The in-order simulators must *behave* at the advertised latencies: a
/// consumer scheduled right behind a producer stalls for exactly
/// `class_latency - 1` cycles (one slot is covered by the issue itself).
#[test]
fn in_order_simulators_behave_at_the_advertised_latencies() {
    let producer_kinds = [
        DynKind::Load,
        DynKind::IMul,
        DynKind::IDiv,
        DynKind::FAdd,
        DynKind::FMul,
        DynKind::FDiv,
    ];
    for kind in producer_kinds {
        let t = vec![
            DynInsn { kind, dst: Some(1), srcs: [0; 3], n_srcs: 0, addr: 0 },
            DynInsn {
                kind: DynKind::IAlu,
                dst: Some(2),
                srcs: [1, 0, 0],
                n_srcs: 1,
                addr: 0,
            },
        ];
        let r4600 = R4600Config::default();
        let s = r4600_cycles(&t, &r4600);
        assert_eq!(
            s.stall_cycles,
            r4600.class_latency(kind.class()) - 1,
            "r4600 load-use distance for {kind:?}"
        );
        let w4 = W4Config::default();
        let s = w4_cycles(&t, &w4);
        assert_eq!(
            s.stall_cycles,
            w4.class_latency(kind.class()),
            "w4 head-of-line wait for {kind:?} (consumer shares the producer's group)"
        );
    }
}

/// End-to-end: lower a real function and check every LIR op prices
/// identically through `latency` and `class_latency` on all targets —
/// i.e. there is no per-op side table hiding anywhere.
#[test]
fn lowered_functions_price_through_the_class_table() {
    let src = "double x[16]; int g;\n\
        int main() { int i; for (i = 0; i < 16; i++) x[i] = x[i] * 2.0 + g; return g / 3; }";
    let (p, s) = compile_to_ast(src).unwrap();
    let prog = lower_program(&p, &s);
    for f in &prog.funcs {
        let lir = lir_function(f);
        assert_eq!(lir.ops.len(), f.insns.len());
        for mach in all_backends() {
            for op in &lir.ops {
                assert_eq!(mach.latency(op), mach.class_latency(op.class));
            }
        }
    }
}

#[test]
fn registry_resolves_all_three_targets() {
    for name in ["r4600", "r10000", "w4"] {
        let b = backend_by_name(name).expect(name);
        assert_eq!(b.name(), name);
    }
    assert!(backend_by_name("r8000").is_none());
    let names: Vec<_> = all_backends().iter().map(|b| b.name()).collect();
    assert_eq!(names, vec!["r4600", "r10000", "w4"]);
}
