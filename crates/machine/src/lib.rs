//! # hli-machine — the target-machine substrate
//!
//! The paper measures wall-clock speedups of HLI-scheduled binaries on two
//! MIPS machines: a pipelined in-order **R4600** and a 4-issue out-of-order
//! **R10000** whose load/store queue holds loads back until all preceding
//! stores are known independent (Section 4.3 attributes the R10000's larger
//! speedups to exactly that mechanism). Neither machine is available here,
//! so this crate provides deterministic simulators in their image:
//!
//! * [`exec`] — the RTL executor: functional semantics (the differential
//!   oracle against `hli-lang`'s AST interpreter) plus a dynamic
//!   instruction trace;
//! * [`r4600`] — a single-issue in-order pipeline timing model: issue one
//!   instruction per cycle, stall on operand latency (the compile-time
//!   schedule directly determines stalls);
//! * [`r10000`] — a 4-wide out-of-order model with a finite instruction
//!   window, function-unit contention, in-order retirement, and a
//!   load/store queue in which a load may not begin until every earlier
//!   store in the window has computed its address (and must wait for
//!   overlapping store data);
//! * [`w4`] — a wide in-order (VLIW-ish) model: 4 issue slots, no dynamic
//!   reordering, exposed latencies — the target where the static schedule
//!   is the *whole* story.
//!
//! Every model implements [`hli_lir::MachineBackend`]; its
//! `class_latency` table is the single latency source the scheduler, the
//! benefit estimators and the simulator itself all read (the
//! latency-agreement regression test pins this). Simulated cycle counts
//! replace the paper's wall-clock seconds; speedup ratios (GCC-scheduled
//! vs HLI-scheduled code on the same model) are the reproduced quantity.

pub mod exec;
pub mod r10000;
pub mod r4600;
pub mod w4;

pub use exec::{
    execute, execute_with_func_trace, execute_with_trace, DynInsn, DynKind, ExecError, RunResult,
};
pub use hli_lir::{MachStats, MachineBackend, OpClass, ScheduleConstraints};
pub use r10000::{r10000_cycles, r10000_cycles_per_func, R10000Config, R10000Stats};
pub use r4600::{r4600_cycles, r4600_cycles_per_func, R4600Config, R4600Stats};
pub use w4::{w4_cycles, w4_cycles_per_func, W4Config, W4Stats};

/// The default-configured targets, as registry statics (`'static` so a
/// `&'static dyn MachineBackend` can be passed around freely).
pub static R4600_DEFAULT: R4600Config = R4600Config::DEFAULT;
pub static R10000_DEFAULT: R10000Config = R10000Config::DEFAULT;
pub static W4_DEFAULT: W4Config = W4Config::DEFAULT;

/// Every registered target, in canonical order (the order `--machine`
/// help text, target matrices and the cross-target tests use).
pub fn all_backends() -> [&'static dyn MachineBackend; 3] {
    [&R4600_DEFAULT, &R10000_DEFAULT, &W4_DEFAULT]
}

/// Resolve a target by its stable id ("r4600", "r10000", "w4").
pub fn backend_by_name(name: &str) -> Option<&'static dyn MachineBackend> {
    all_backends().into_iter().find(|b| b.name() == name)
}

/// The ids of every registered target, for error messages and usage text.
pub fn backend_names() -> Vec<&'static str> {
    all_backends().iter().map(|b| b.name()).collect()
}

/// Run a program once and time the shared trace on each given backend.
///
/// The caller names the backends (typically the same ones the scheduler
/// assumed), so a harness bin cannot silently time on a config that
/// differs from the one the schedule was built for. Returns one
/// [`MachStats`] per backend, in input order.
pub fn time_on(
    prog: &hli_backend::RtlProgram,
    machs: &[&dyn MachineBackend],
) -> Result<(RunResult, Vec<MachStats>), ExecError> {
    let (res, trace) = execute_with_trace(prog)?;
    let stats = machs.iter().map(|m| m.cycles(&trace)).collect();
    Ok((res, stats))
}
