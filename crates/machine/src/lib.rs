//! # hli-machine — the target-machine substrate
//!
//! The paper measures wall-clock speedups of HLI-scheduled binaries on two
//! MIPS machines: a pipelined in-order **R4600** and a 4-issue out-of-order
//! **R10000** whose load/store queue holds loads back until all preceding
//! stores are known independent (Section 4.3 attributes the R10000's larger
//! speedups to exactly that mechanism). Neither machine is available here,
//! so this crate provides deterministic simulators in their image:
//!
//! * [`exec`] — the RTL executor: functional semantics (the differential
//!   oracle against `hli-lang`'s AST interpreter) plus a dynamic
//!   instruction trace;
//! * [`r4600`] — a single-issue in-order pipeline timing model: issue one
//!   instruction per cycle, stall on operand latency (the compile-time
//!   schedule directly determines stalls);
//! * [`r10000`] — a 4-wide out-of-order model with a finite instruction
//!   window, function-unit contention, in-order retirement, and a
//!   load/store queue in which a load may not begin until every earlier
//!   store in the window has computed its address (and must wait for
//!   overlapping store data);
//!
//! Simulated cycle counts replace the paper's wall-clock seconds; speedup
//! ratios (GCC-scheduled vs HLI-scheduled code on the same model) are the
//! reproduced quantity.

pub mod exec;
pub mod r10000;
pub mod r4600;

pub use exec::{
    execute, execute_with_func_trace, execute_with_trace, DynInsn, DynKind, ExecError, RunResult,
};
pub use r10000::{r10000_cycles, r10000_cycles_per_func, R10000Config, R10000Stats};
pub use r4600::{r4600_cycles, r4600_cycles_per_func, R4600Config, R4600Stats};

/// Convenience: run a program on both machine models.
pub fn time_on_both(
    prog: &hli_backend::RtlProgram,
) -> Result<(RunResult, R4600Stats, R10000Stats), ExecError> {
    let (res, trace) = execute_with_trace(prog)?;
    let a = r4600_cycles(&trace, &R4600Config::default());
    let b = r10000_cycles(&trace, &R10000Config::default());
    Ok((res, a, b))
}
