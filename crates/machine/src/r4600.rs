//! R4600-like timing model: single-issue, in-order, stall-on-use.
//!
//! The R4600 is a scalar in-order pipeline; what the compile-time schedule
//! buys is covering operand latencies (a load's consumer scheduled two
//! slots later hides the load-use delay). The model: one instruction issues
//! per cycle, but not before every source register's producing instruction
//! has completed; a taken branch costs one bubble.

use crate::exec::{DynInsn, DynKind, RegKey};
use hli_lir::{MachStats, MachineBackend, OpClass, ScheduleConstraints};
use std::collections::HashMap;

/// Latency configuration (cycles until the result is usable).
#[derive(Debug, Clone, Copy)]
pub struct R4600Config {
    pub load: u64,
    pub ialu: u64,
    pub imul: u64,
    pub idiv: u64,
    pub fadd: u64,
    pub fmul: u64,
    pub fdiv: u64,
    pub call_overhead: u64,
    pub taken_branch_bubble: u64,
}

impl R4600Config {
    /// Roughly R4600-class numbers (const so the registry can hold a
    /// `'static` instance).
    pub const DEFAULT: R4600Config = R4600Config {
        load: 2,
        ialu: 1,
        imul: 10,
        idiv: 42,
        fadd: 4,
        fmul: 8,
        fdiv: 32,
        call_overhead: 2,
        taken_branch_bubble: 1,
    };

    fn latency(&self, k: DynKind) -> u64 {
        self.class_latency(k.class())
    }
}

impl Default for R4600Config {
    fn default() -> Self {
        R4600Config::DEFAULT
    }
}

impl MachineBackend for R4600Config {
    fn name(&self) -> &'static str {
        "r4600"
    }

    /// The one latency table: the simulator's stall-on-use delays and the
    /// scheduler's critical-path weights both read it.
    fn class_latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Load => self.load,
            OpClass::IMul => self.imul,
            OpClass::IDiv => self.idiv,
            OpClass::FAdd => self.fadd,
            OpClass::FMul => self.fmul,
            OpClass::FDiv => self.fdiv,
            // Stores, branches, calls and plain ALU ops produce (or
            // forward) results at ALU speed; call/branch *overheads* are
            // pipeline effects the simulator adds separately.
            _ => self.ialu,
        }
    }

    fn schedule_constraints(&self) -> ScheduleConstraints {
        ScheduleConstraints { in_order: true, issue_width: 1, window: 1 }
    }

    fn cycles(&self, trace: &[DynInsn]) -> MachStats {
        r4600_cycles(trace, self).into()
    }

    fn cycles_per_func(
        &self,
        trace: &[DynInsn],
        funcs: &[u32],
        nfuncs: usize,
    ) -> (MachStats, Vec<u64>) {
        let (stats, bins) = r4600_cycles_per_func(trace, funcs, nfuncs, self);
        (stats.into(), bins)
    }
}

impl From<R4600Stats> for MachStats {
    fn from(s: R4600Stats) -> MachStats {
        MachStats {
            cycles: s.cycles,
            insns: s.insns,
            detail: vec![
                ("stall_cycles", s.stall_cycles),
                ("branch_bubbles", s.branch_bubbles),
            ],
        }
    }
}

/// Timing outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct R4600Stats {
    pub cycles: u64,
    pub insns: u64,
    /// Cycles lost waiting for operands.
    pub stall_cycles: u64,
    /// Cycles lost to taken-branch bubbles.
    pub branch_bubbles: u64,
}

fn simulate(
    trace: &[DynInsn],
    cfg: &R4600Config,
    mut per_func: Option<(&[u32], &mut [u64])>,
) -> R4600Stats {
    let mut ready: HashMap<RegKey, u64> = HashMap::new();
    let mut time: u64 = 0;
    let mut stats = R4600Stats::default();
    for (i, ev) in trace.iter().enumerate() {
        stats.insns += 1;
        let operands_ready = ev
            .sources()
            .iter()
            .map(|r| ready.get(r).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let issue = time.max(operands_ready);
        stats.stall_cycles += issue - time;
        let before = time;
        time = issue + 1;
        match ev.kind {
            DynKind::Branch { taken: true } => {
                time += cfg.taken_branch_bubble;
                stats.branch_bubbles += cfg.taken_branch_bubble;
            }
            DynKind::Call | DynKind::Ret => {
                time += cfg.call_overhead;
            }
            _ => {}
        }
        if let Some(d) = ev.dst {
            ready.insert(d, issue + cfg.latency(ev.kind));
        }
        // Charge the full advance (issue stall + execute + bubbles) to the
        // function that owns this event; the per-function sums then equal
        // the total cycle count exactly.
        if let Some((funcs, bins)) = per_func.as_mut() {
            let f = funcs[i] as usize;
            bins[f] += time - before;
        }
    }
    stats.cycles = time;
    let reg = hli_obs::metrics::cur();
    reg.counter("machine.r4600.cycles").add(stats.cycles);
    reg.counter("machine.r4600.insns").add(stats.insns);
    reg.counter("machine.r4600.stall_cycles").add(stats.stall_cycles);
    reg.counter("machine.r4600.branch_bubbles").add(stats.branch_bubbles);
    stats
}

/// Simulate the trace on the in-order pipeline.
pub fn r4600_cycles(trace: &[DynInsn], cfg: &R4600Config) -> R4600Stats {
    simulate(trace, cfg, None)
}

/// Like [`r4600_cycles`], but also attributes cycles to functions.
///
/// `funcs[i]` names the function index owning `trace[i]` (as produced by
/// `execute_with_func_trace`); the returned vector has `nfuncs` entries whose
/// sum equals `stats.cycles`.
pub fn r4600_cycles_per_func(
    trace: &[DynInsn],
    funcs: &[u32],
    nfuncs: usize,
    cfg: &R4600Config,
) -> (R4600Stats, Vec<u64>) {
    debug_assert_eq!(trace.len(), funcs.len());
    let mut bins = vec![0u64; nfuncs];
    let stats = simulate(trace, cfg, Some((funcs, &mut bins)));
    (stats, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(kind: DynKind, dst: Option<RegKey>, srcs: &[RegKey]) -> DynInsn {
        let mut s = [0u64; 3];
        for (i, &r) in srcs.iter().take(3).enumerate() {
            s[i] = r;
        }
        DynInsn { kind, dst, srcs: s, n_srcs: srcs.len() as u8, addr: 0 }
    }

    #[test]
    fn independent_insns_issue_every_cycle() {
        let t: Vec<DynInsn> = (0..10).map(|i| ins(DynKind::IAlu, Some(i), &[])).collect();
        let s = r4600_cycles(&t, &R4600Config::default());
        assert_eq!(s.cycles, 10);
        assert_eq!(s.stall_cycles, 0);
    }

    #[test]
    fn load_use_stalls() {
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
        ];
        let s = r4600_cycles(&t, &R4600Config::default());
        // Load issues at 0, ready at 2; consumer stalls one cycle.
        assert_eq!(s.stall_cycles, 1);
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn scheduling_distance_hides_latency() {
        let hidden = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(3), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
        ];
        let s = r4600_cycles(&hidden, &R4600Config::default());
        assert_eq!(s.stall_cycles, 0, "filler covers the load delay");
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn fdiv_chain_is_slow() {
        let t = vec![
            ins(DynKind::FDiv, Some(1), &[]),
            ins(DynKind::FAdd, Some(2), &[1]),
        ];
        let s = r4600_cycles(&t, &R4600Config::default());
        assert!(s.cycles > 30);
    }

    #[test]
    fn taken_branches_cost_bubbles() {
        let t = vec![
            ins(DynKind::Branch { taken: true }, None, &[]),
            ins(DynKind::Branch { taken: false }, None, &[]),
        ];
        let s = r4600_cycles(&t, &R4600Config::default());
        assert_eq!(s.branch_bubbles, 1);
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn per_func_bins_sum_to_total() {
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
            ins(DynKind::Call, None, &[]),
            ins(DynKind::FDiv, Some(3), &[]),
            ins(DynKind::FAdd, Some(4), &[3]),
            ins(DynKind::Ret, None, &[]),
        ];
        let funcs = vec![0, 0, 0, 1, 1, 1];
        let cfg = R4600Config::default();
        let (stats, bins) = r4600_cycles_per_func(&t, &funcs, 2, &cfg);
        assert_eq!(bins.iter().sum::<u64>(), stats.cycles);
        assert_eq!(stats, r4600_cycles(&t, &cfg), "attribution must not perturb timing");
        assert!(bins[1] > bins[0], "fdiv chain dominates");
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = r4600_cycles(&[], &R4600Config::default());
        assert_eq!(s.cycles, 0);
        assert_eq!(s.insns, 0);
    }
}
