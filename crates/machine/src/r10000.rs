//! R10000-like timing model: 4-issue out-of-order with a load/store queue.
//!
//! The mechanism the paper leans on (Section 4.3): *"a load instruction in
//! the load/store queue will not be issued to the memory system until all
//! the preceding stores in the queue are known to be independent of the
//! load."* When the compiler can prove independence and schedule loads
//! above stores, the window sees the load earlier and the LSQ constraint
//! binds less often — that is why the R10000 rewards HLI scheduling more
//! than the in-order R4600.
//!
//! Model: fetch `width` instructions per cycle in trace order into a
//! finite window; an instruction begins execution when its operands are
//! ready and a function unit is free; a **load additionally waits until
//! every earlier store in the window has computed its address**, and
//! overlapping stores forward their data at completion; retirement is
//! in-order, `width` per cycle. Branches resolve at execution (perfect
//! prediction — mispredictions would only add noise common to both
//! compiler configurations being compared).

use crate::exec::{DynInsn, DynKind, RegKey};
use hli_lir::{MachStats, MachineBackend, OpClass, ScheduleConstraints};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct R10000Config {
    /// Fetch/issue/retire width.
    pub width: usize,
    /// Instruction window (active list) size.
    pub window: usize,
    /// Integer ALUs.
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Load/store units (address + cache ports).
    pub ls_units: usize,
    pub load: u64,
    pub ialu: u64,
    pub imul: u64,
    pub idiv: u64,
    pub fadd: u64,
    pub fmul: u64,
    pub fdiv: u64,
}

impl Default for R10000Config {
    fn default() -> Self {
        R10000Config::DEFAULT
    }
}

impl R10000Config {
    /// R10000: 4-wide, 32-entry active list, 2 int ALUs, 2 FPUs, 1 LSU
    /// (const so the registry can hold a `'static` instance).
    pub const DEFAULT: R10000Config = R10000Config {
        width: 4,
        window: 32,
        int_units: 2,
        fp_units: 2,
        ls_units: 1,
        load: 2,
        ialu: 1,
        imul: 6,
        idiv: 35,
        fadd: 2,
        fmul: 3,
        fdiv: 19,
    };

    fn latency(&self, k: DynKind) -> u64 {
        self.class_latency(k.class())
    }

    fn unit_of(&self, k: DynKind) -> Unit {
        match k {
            DynKind::Load | DynKind::Store => Unit::Ls,
            DynKind::FAdd | DynKind::FMul | DynKind::FDiv => Unit::Fp,
            _ => Unit::Int,
        }
    }
}

impl MachineBackend for R10000Config {
    fn name(&self) -> &'static str {
        "r10000"
    }

    /// The one latency table for this target; the OoO simulator's
    /// completion times and the scheduler's weights both read it.
    fn class_latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Load => self.load,
            OpClass::IMul => self.imul,
            OpClass::IDiv => self.idiv,
            OpClass::FAdd => self.fadd,
            OpClass::FMul => self.fmul,
            OpClass::FDiv => self.fdiv,
            // A store completes (address + data to the LSQ) in one cycle;
            // ALU-class ops, branches and call/ret results at ALU speed.
            OpClass::Store => 1,
            _ => self.ialu,
        }
    }

    fn schedule_constraints(&self) -> ScheduleConstraints {
        ScheduleConstraints {
            in_order: false,
            issue_width: self.width as u32,
            window: self.window as u32,
        }
    }

    fn cycles(&self, trace: &[DynInsn]) -> MachStats {
        r10000_cycles(trace, self).into()
    }

    fn cycles_per_func(
        &self,
        trace: &[DynInsn],
        funcs: &[u32],
        nfuncs: usize,
    ) -> (MachStats, Vec<u64>) {
        let (stats, bins) = r10000_cycles_per_func(trace, funcs, nfuncs, self);
        (stats.into(), bins)
    }
}

impl From<R10000Stats> for MachStats {
    fn from(s: R10000Stats) -> MachStats {
        MachStats {
            cycles: s.cycles,
            insns: s.insns,
            detail: vec![("lsq_stalls", s.lsq_stalls), ("forwards", s.forwards)],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Int,
    Fp,
    Ls,
}

/// Timing outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct R10000Stats {
    pub cycles: u64,
    pub insns: u64,
    /// Load issues delayed by unresolved earlier stores in the LSQ.
    pub lsq_stalls: u64,
    /// Loads that had to wait for an overlapping store's data (forwarding).
    pub forwards: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    kind: DynKind,
    /// Destination register and its rename version.
    dst: Option<(RegKey, u64)>,
    /// Versioned sources (register renaming: a source names the exact
    /// in-flight producer it must wait for).
    srcs: [(RegKey, u64); 3],
    n_srcs: u8,
    addr: i64,
    /// Cycle the instruction entered the window.
    fetched: u64,
    /// Cycle execution starts (u64::MAX = not yet issued).
    start: u64,
    /// Cycle the result is available.
    complete: u64,
    issued: bool,
}

fn simulate(
    trace: &[DynInsn],
    cfg: &R10000Config,
    mut per_func: Option<(&[u32], &mut [u64])>,
) -> R10000Stats {
    let mut stats = R10000Stats { insns: trace.len() as u64, ..Default::default() };
    if trace.is_empty() {
        return stats;
    }
    // Register renaming: the current version of each architectural key and
    // the completion cycle of every produced version. Version 0 = the
    // initial value, ready at cycle 0.
    let mut reg_version: HashMap<RegKey, u64> = HashMap::new();
    let mut version_ready: HashMap<(RegKey, u64), u64> = HashMap::new();
    let mut window: VecDeque<Slot> = VecDeque::with_capacity(cfg.window);
    let mut next_fetch = 0usize;
    let mut cycle: u64 = 0;
    // Generous upper bound to guarantee termination on model bugs.
    let max_cycles = (trace.len() as u64 + 64) * 64;
    let reg = hli_obs::metrics::cur();
    let occupancy = reg.histogram("machine.r10000.window_occupancy");

    while (next_fetch < trace.len() || !window.is_empty()) && cycle < max_cycles {
        // Retire in order.
        let mut retired = 0;
        while retired < cfg.width {
            match window.front() {
                Some(s) if s.issued && s.complete <= cycle => {
                    window.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        // Fetch into the window (renaming sources to producer versions).
        let mut fetched = 0;
        while fetched < cfg.width && window.len() < cfg.window && next_fetch < trace.len() {
            let ev = &trace[next_fetch];
            let mut srcs = [(0u64, 0u64); 3];
            for (slot, &key) in srcs.iter_mut().zip(ev.srcs.iter()).take(ev.n_srcs as usize) {
                *slot = (key, reg_version.get(&key).copied().unwrap_or(0));
            }
            let dst = ev.dst.map(|d| {
                let v = reg_version.entry(d).or_insert(0);
                *v += 1;
                (d, *v)
            });
            window.push_back(Slot {
                kind: ev.kind,
                dst,
                srcs,
                n_srcs: ev.n_srcs,
                addr: ev.addr,
                fetched: cycle,
                start: u64::MAX,
                complete: u64::MAX,
                issued: false,
            });
            next_fetch += 1;
            fetched += 1;
        }
        // Issue: scan the window oldest-first, respecting unit limits.
        let mut free = [cfg.int_units, cfg.fp_units, cfg.ls_units];
        let mut issued_this_cycle = 0;
        for i in 0..window.len() {
            if issued_this_cycle >= cfg.width {
                break;
            }
            if window[i].issued || window[i].fetched >= cycle {
                continue;
            }
            let unit = cfg.unit_of(window[i].kind);
            let unit_idx = match unit {
                Unit::Int => 0,
                Unit::Fp => 1,
                Unit::Ls => 2,
            };
            if free[unit_idx] == 0 {
                continue;
            }
            // Operand readiness: version 0 is ready at time 0; an in-flight
            // version is ready at its producer's completion (unknown until
            // it issues).
            let ops_ready = (0..window[i].n_srcs as usize)
                .map(|k| {
                    let (key, ver) = window[i].srcs[k];
                    if ver == 0 {
                        0
                    } else {
                        version_ready.get(&(key, ver)).copied().unwrap_or(u64::MAX)
                    }
                })
                .max()
                .unwrap_or(0);
            if ops_ready > cycle {
                continue;
            }
            // The LSQ rule: a load may not issue while any earlier store in
            // the window has an unknown address (not yet issued), and must
            // wait for the data of an overlapping completed-address store.
            if window[i].kind == DynKind::Load {
                let mut blocked = false;
                let mut forward_wait: u64 = 0;
                for j in 0..i {
                    if window[j].kind != DynKind::Store {
                        continue;
                    }
                    if !window[j].issued {
                        blocked = true;
                        break;
                    }
                    if window[j].addr == window[i].addr && window[j].complete > cycle {
                        forward_wait = forward_wait.max(window[j].complete);
                    }
                }
                if blocked {
                    stats.lsq_stalls += 1;
                    continue;
                }
                if forward_wait > cycle {
                    stats.forwards += 1;
                    continue;
                }
            }
            // Issue it.
            let lat = cfg.latency(window[i].kind);
            window[i].issued = true;
            window[i].start = cycle;
            window[i].complete = cycle + lat;
            if let Some((d, v)) = window[i].dst {
                version_ready.insert((d, v), cycle + lat);
            }
            free[unit_idx] -= 1;
            issued_this_cycle += 1;
        }
        occupancy.observe(window.len() as u64);
        // Attribute the cycle to the function of the oldest in-flight
        // instruction (the retirement bottleneck). The window holds trace
        // indices [next_fetch - len, next_fetch); if everything already
        // retired this cycle, charge the last-fetched function.
        if let Some((funcs, bins)) = per_func.as_mut() {
            let idx = if window.is_empty() {
                next_fetch.saturating_sub(1)
            } else {
                next_fetch - window.len()
            };
            bins[funcs[idx] as usize] += 1;
        }
        cycle += 1;
    }
    stats.cycles = cycle;
    reg.counter("machine.r10000.cycles").add(stats.cycles);
    reg.counter("machine.r10000.insns").add(stats.insns);
    reg.counter("machine.r10000.lsq_stalls").add(stats.lsq_stalls);
    reg.counter("machine.r10000.forwards").add(stats.forwards);
    if let Some(ipc) = (stats.insns * 1000).checked_div(stats.cycles) {
        reg.gauge("machine.r10000.ipc_milli").set(ipc as i64);
    }
    stats
}

/// Simulate the trace.
pub fn r10000_cycles(trace: &[DynInsn], cfg: &R10000Config) -> R10000Stats {
    simulate(trace, cfg, None)
}

/// Like [`r10000_cycles`], but also attributes cycles to functions.
///
/// `funcs[i]` names the function index owning `trace[i]`; each simulated
/// cycle is charged to the function of the oldest in-flight instruction, so
/// the returned bins sum to `stats.cycles`.
pub fn r10000_cycles_per_func(
    trace: &[DynInsn],
    funcs: &[u32],
    nfuncs: usize,
    cfg: &R10000Config,
) -> (R10000Stats, Vec<u64>) {
    debug_assert_eq!(trace.len(), funcs.len());
    let mut bins = vec![0u64; nfuncs];
    let stats = simulate(trace, cfg, Some((funcs, &mut bins)));
    (stats, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(kind: DynKind, dst: Option<RegKey>, srcs: &[RegKey]) -> DynInsn {
        let mut s = [0u64; 3];
        for (i, &r) in srcs.iter().take(3).enumerate() {
            s[i] = r;
        }
        DynInsn { kind, dst, srcs: s, n_srcs: srcs.len() as u8, addr: 0 }
    }

    fn mem(kind: DynKind, dst: Option<RegKey>, srcs: &[RegKey], addr: i64) -> DynInsn {
        let mut e = ins(kind, dst, srcs);
        e.addr = addr;
        e
    }

    #[test]
    fn wide_issue_beats_scalar() {
        // 16 independent ALU ops: ~4 cycles of issue on a 4-wide core.
        let t: Vec<DynInsn> = (0..16).map(|i| ins(DynKind::IAlu, Some(i), &[])).collect();
        let s = r10000_cycles(&t, &R10000Config::default());
        assert!(s.cycles <= 10, "got {} cycles", s.cycles);
        let scalar = crate::r4600::r4600_cycles(&t, &crate::r4600::R4600Config::default());
        assert!(s.cycles < scalar.cycles);
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut t = vec![ins(DynKind::IAlu, Some(0), &[])];
        for i in 1..12u64 {
            t.push(ins(DynKind::IAlu, Some(i), &[i - 1]));
        }
        let s = r10000_cycles(&t, &R10000Config::default());
        assert!(s.cycles >= 12, "chain cannot go wide: {}", s.cycles);
    }

    #[test]
    fn load_blocked_by_unissued_store() {
        // Store whose address depends on a slow divide; following load to a
        // DIFFERENT address still stalls until the store issues.
        let t = vec![
            ins(DynKind::IDiv, Some(1), &[]),
            mem(DynKind::Store, None, &[1], 0x1000),
            mem(DynKind::Load, Some(2), &[], 0x2000),
        ];
        let s = r10000_cycles(&t, &R10000Config::default());
        assert!(s.lsq_stalls > 0, "LSQ must hold the load back");
        // Same code with the store independent of the divide: loads fly.
        let t2 = vec![
            ins(DynKind::IDiv, Some(1), &[]),
            mem(DynKind::Store, None, &[], 0x1000),
            mem(DynKind::Load, Some(2), &[], 0x2000),
        ];
        let s2 = r10000_cycles(&t2, &R10000Config::default());
        assert!(s2.cycles < s.cycles);
    }

    #[test]
    fn scheduling_loads_before_stores_pays() {
        // HLI-style schedule: the independent load moved above the store.
        let slow_store = |t: &mut Vec<DynInsn>| {
            t.push(ins(DynKind::IDiv, Some(1), &[]));
            t.push(mem(DynKind::Store, None, &[1], 0x1000));
        };
        let mut gcc_order = Vec::new();
        slow_store(&mut gcc_order);
        gcc_order.push(mem(DynKind::Load, Some(2), &[], 0x2000));
        gcc_order.push(ins(DynKind::IAlu, Some(3), &[2]));

        let mut hli_order = vec![mem(DynKind::Load, Some(2), &[], 0x2000)];
        slow_store(&mut hli_order);
        hli_order.push(ins(DynKind::IAlu, Some(3), &[2]));

        let a = r10000_cycles(&gcc_order, &R10000Config::default());
        let b = r10000_cycles(&hli_order, &R10000Config::default());
        assert!(
            b.cycles < a.cycles,
            "hoisted load must win: {} vs {}",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn store_to_load_forwarding_waits_for_data() {
        let t = vec![
            ins(DynKind::FDiv, Some(1), &[]),
            mem(DynKind::Store, None, &[1], 0x1000),
            mem(DynKind::Load, Some(2), &[], 0x1000),
        ];
        let s = r10000_cycles(&t, &R10000Config::default());
        // The load needs the store's data: it cannot complete before the
        // divide feeding the store.
        let cfg = R10000Config::default();
        assert!(s.cycles > cfg.fdiv);
    }

    #[test]
    fn window_limits_lookahead() {
        // A long dependent FDIV chain up front, independent work behind it:
        // a small window cannot reach the independent work.
        let mut t = vec![ins(DynKind::FDiv, Some(0), &[])];
        for i in 1..8u64 {
            t.push(ins(DynKind::FDiv, Some(i), &[i - 1]));
        }
        for i in 100..200u64 {
            t.push(ins(DynKind::IAlu, Some(i), &[]));
        }
        let small = R10000Config { window: 8, ..Default::default() };
        let big = R10000Config { window: 256, ..Default::default() };
        let s_small = r10000_cycles(&t, &small);
        let s_big = r10000_cycles(&t, &big);
        assert!(s_big.cycles < s_small.cycles);
    }

    #[test]
    fn per_func_bins_sum_to_total() {
        let mut t = vec![ins(DynKind::FDiv, Some(0), &[])];
        for i in 1..6u64 {
            t.push(ins(DynKind::FDiv, Some(i), &[i - 1]));
        }
        for i in 100..120u64 {
            t.push(ins(DynKind::IAlu, Some(i), &[]));
        }
        let funcs: Vec<u32> = (0..t.len()).map(|i| if i < 6 { 0 } else { 1 }).collect();
        let cfg = R10000Config::default();
        let (stats, bins) = r10000_cycles_per_func(&t, &funcs, 2, &cfg);
        assert_eq!(bins.iter().sum::<u64>(), stats.cycles);
        assert_eq!(stats, r10000_cycles(&t, &cfg), "attribution must not perturb timing");
        assert!(bins[0] > bins[1], "the fdiv chain holds retirement");
    }

    #[test]
    fn empty_trace() {
        let s = r10000_cycles(&[], &R10000Config::default());
        assert_eq!(s.cycles, 0);
    }
}
