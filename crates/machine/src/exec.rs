//! The RTL executor: functional semantics plus dynamic-trace capture.
//!
//! Semantics mirror `hli-lang`'s AST interpreter exactly (same global
//! layout, same 8-byte words, zeroed frames, truncating float→int): a
//! program's `(return value, global checksum)` must be identical through
//! either path, under any optimization combination — that is the
//! miscompilation oracle of the whole reproduction.

use hli_backend::rtl::*;
use hli_lang::interp::{GLOBAL_BASE, MEM_LIMIT, STACK_BASE};
use std::collections::HashMap;
use std::fmt;

/// Execution failure (faults map to the same conditions the AST
/// interpreter reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    pub msg: String,
    pub func: String,
    pub line: u32,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine fault in `{}` at line {}: {}",
            self.func, self.line, self.msg
        )
    }
}

impl std::error::Error for ExecError {}

/// Observable outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    pub ret: i64,
    /// FNV-1a over the globals segment (same function as the interpreter).
    pub global_checksum: u64,
    pub dyn_insns: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
}

// The dynamic-trace vocabulary (`DynKind`, `DynInsn`, `RegKey`) is the
// canonical-LIR crate's: the executor emits it, every `MachineBackend`
// prices it, and re-exporting here keeps `hli_machine::exec::DynInsn`
// paths working.
pub use hli_lir::{DynInsn, DynKind, RegKey};

/// Run functionally, discarding the trace.
pub fn execute(prog: &RtlProgram) -> Result<RunResult, ExecError> {
    let _t = hli_obs::phase::timed("machine.execute");
    let mut sink = ();
    Machine::new(prog, 200_000_000).run(&mut sink)
}

/// Run and capture the dynamic instruction trace.
pub fn execute_with_trace(prog: &RtlProgram) -> Result<(RunResult, Vec<DynInsn>), ExecError> {
    let _t = hli_obs::phase::timed("machine.execute");
    let mut trace = Vec::new();
    let res = Machine::new(prog, 200_000_000).run(&mut trace)?;
    Ok((res, trace))
}

/// Run and capture the dynamic trace plus, parallel to it, the index into
/// `prog.funcs` of the function each event executed in. This is the join
/// key for decision-to-cycles attribution: the cycle models charge every
/// event (or stall) to its function, and `obsreport` matches those totals
/// against the `DecisionRecord.function` of the decisions made there.
/// A `Call` event belongs to the caller (it issues in the caller's frame);
/// a `Ret` belongs to the returning callee.
pub fn execute_with_func_trace(
    prog: &RtlProgram,
) -> Result<(RunResult, Vec<DynInsn>, Vec<u32>), ExecError> {
    let _t = hli_obs::phase::timed("machine.execute");
    let mut sink = FuncTrace::default();
    let res = Machine::new(prog, 200_000_000).run(&mut sink)?;
    Ok((res, sink.events, sink.funcs))
}

/// Trace consumers.
pub trait TraceSink {
    fn event(&mut self, ev: DynInsn);
    /// Control transferred into `prog.funcs[func_idx]`: program start,
    /// a call entering its callee, or a return landing back in the
    /// caller. Sinks that don't attribute events per function ignore it.
    fn enter(&mut self, _func_idx: u32) {}
}

impl TraceSink for () {
    fn event(&mut self, _ev: DynInsn) {}
}

impl TraceSink for Vec<DynInsn> {
    fn event(&mut self, ev: DynInsn) {
        self.push(ev);
    }
}

/// Sink recording each event together with its executing function index.
#[derive(Default)]
struct FuncTrace {
    events: Vec<DynInsn>,
    funcs: Vec<u32>,
    cur: u32,
}

impl TraceSink for FuncTrace {
    fn event(&mut self, ev: DynInsn) {
        self.events.push(ev);
        self.funcs.push(self.cur);
    }

    fn enter(&mut self, func_idx: u32) {
        self.cur = func_idx;
    }
}

struct Frame<'p> {
    func: &'p RtlFunc,
    serial: u64,
    regs: Vec<u64>,
    base: i64,
    /// Byte address of the outgoing-args area.
    out_base: i64,
    /// Program counter (index into `func.insns`).
    pc: usize,
    /// Register receiving the return value in the *caller*.
    ret_to: Option<Reg>,
}

struct Machine<'p> {
    prog: &'p RtlProgram,
    mem: Vec<u64>,
    sp: i64,
    frames: Vec<Frame<'p>>,
    next_serial: u64,
    steps: u64,
    max_steps: u64,
    loads: u64,
    stores: u64,
    calls: u64,
    label_cache: HashMap<(usize, Label), usize>,
    func_index: HashMap<&'p str, usize>,
}

impl<'p> Machine<'p> {
    fn new(prog: &'p RtlProgram, max_steps: u64) -> Self {
        let func_index = prog.funcs.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();
        Machine {
            prog,
            mem: vec![0; (STACK_BASE / 8) as usize],
            sp: STACK_BASE,
            frames: Vec::new(),
            next_serial: 0,
            steps: 0,
            max_steps,
            loads: 0,
            stores: 0,
            calls: 0,
            label_cache: HashMap::new(),
            func_index,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ExecError {
        let (func, line) = self
            .frames
            .last()
            .map(|f| {
                let line =
                    f.func.insns.get(f.pc.min(f.func.insns.len() - 1)).map(|i| i.line).unwrap_or(0);
                (f.func.name.clone(), line)
            })
            .unwrap_or_default();
        ExecError { msg: msg.into(), func, line }
    }

    fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in (GLOBAL_BASE..self.prog.globals_end).step_by(8) {
            let w = self.mem.get((a / 8) as usize).copied().unwrap_or(0);
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn mem_read(&mut self, addr: i64) -> Result<u64, ExecError> {
        if !(GLOBAL_BASE..MEM_LIMIT).contains(&addr) || addr % 8 != 0 {
            return Err(self.err(format!("bad load address {addr:#x}")));
        }
        let idx = (addr / 8) as usize;
        if idx >= self.mem.len() {
            self.mem.resize(idx + 1, 0);
        }
        self.loads += 1;
        Ok(self.mem[idx])
    }

    fn mem_write(&mut self, addr: i64, bits: u64) -> Result<(), ExecError> {
        if !(GLOBAL_BASE..MEM_LIMIT).contains(&addr) || addr % 8 != 0 {
            return Err(self.err(format!("bad store address {addr:#x}")));
        }
        let idx = (addr / 8) as usize;
        if idx >= self.mem.len() {
            self.mem.resize(idx + 1, 0);
        }
        self.stores += 1;
        self.mem[idx] = bits;
        Ok(())
    }

    fn push_frame(&mut self, func: &'p RtlFunc, ret_to: Option<Reg>) -> Result<(), ExecError> {
        if self.frames.len() > 128 {
            return Err(self.err("call stack overflow"));
        }
        self.calls += 1;
        let base = self.sp;
        let out_base = base + func.frame_size;
        let total = func.frame_size + func.out_args as i64 * 8;
        self.sp += total;
        if self.sp >= MEM_LIMIT {
            return Err(self.err("stack segment exhausted"));
        }
        // Zero the frame (locals read as 0, matching the interpreter).
        for a in (base..base + total).step_by(8) {
            let idx = (a / 8) as usize;
            if idx >= self.mem.len() {
                self.mem.resize(idx + 1, 0);
            }
            self.mem[idx] = 0;
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        self.frames.push(Frame {
            func,
            serial,
            regs: vec![0; func.num_regs as usize],
            base,
            out_base,
            pc: 0,
            ret_to,
        });
        Ok(())
    }

    fn frame(&self) -> &Frame<'p> {
        self.frames.last().expect("active frame")
    }

    fn frame_mut(&mut self) -> &mut Frame<'p> {
        self.frames.last_mut().expect("active frame")
    }

    fn reg(&self, r: Reg) -> u64 {
        self.frame().regs[r as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        self.frame_mut().regs[r as usize] = v;
    }

    fn key(&self, r: Reg) -> RegKey {
        (self.frame().serial << 24) | r as u64
    }

    /// Resolve a memory reference to a byte address.
    fn addr_of(&self, m: &MemRef) -> Result<i64, ExecError> {
        let f = self.frame();
        let base = match m.base {
            BaseAddr::Sym(s) => *self
                .prog
                .global_addr
                .get(&s)
                .ok_or_else(|| self.err(format!("unknown global {s}")))?,
            BaseAddr::Stack(off) => f.base + off,
            BaseAddr::Reg(r) => f.regs[r as usize] as i64,
            BaseAddr::OutArg(i) => {
                f.out_base + (i as i64 - hli_lang::memwalk::NUM_ARG_REGS as i64) * 8
            }
            BaseAddr::InArg(i) => {
                if self.frames.len() < 2 {
                    // `main` taking stack parameters has no caller frame.
                    return Err(self.err(format!("stack parameter {i} read with no caller frame")));
                }
                let caller = &self.frames[self.frames.len() - 2];
                caller.out_base + (i as i64 - hli_lang::memwalk::NUM_ARG_REGS as i64) * 8
            }
        };
        let idx = m.index.map(|r| f.regs[r as usize] as i64).unwrap_or(0);
        Ok(base + idx * m.scale + m.offset)
    }

    fn base_addr_value(&self, b: BaseAddr, off: i64) -> Result<i64, ExecError> {
        let f = self.frame();
        Ok(match b {
            BaseAddr::Sym(s) => {
                *self
                    .prog
                    .global_addr
                    .get(&s)
                    .ok_or_else(|| self.err(format!("unknown global {s}")))?
                    + off
            }
            BaseAddr::Stack(slot) => f.base + slot + off,
            _ => return Err(self.err("address of non-object base")),
        })
    }

    fn run(mut self, sink: &mut impl TraceSink) -> Result<RunResult, ExecError> {
        let main_idx = *self.func_index.get("main").ok_or_else(|| ExecError {
            msg: "no `main`".into(),
            func: String::new(),
            line: 0,
        })?;
        let main = &self.prog.funcs[main_idx];
        self.push_frame(main, None)?;
        sink.enter(main_idx as u32);
        self.calls -= 1; // main's activation is setup, not program behaviour
                         // Initialize globals.
        for &(addr, bits) in &self.prog.global_init {
            self.mem_write(addr, bits)?;
            self.stores -= 1;
        }
        let ret_val: i64;
        'outer: loop {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(self.err("instruction budget exceeded"));
            }
            let frame_len = self.frame().func.insns.len();
            if self.frame().pc >= frame_len {
                return Err(self.err("fell off the end of the instruction chain"));
            }
            let pc = self.frame().pc;
            let insn = &self.frame().func.insns[pc];
            let op = insn.op.clone();
            let mut next_pc = pc + 1;
            match op {
                Op::LiI(d, v) => {
                    self.set_reg(d, v as u64);
                    self.emit1(sink, DynKind::Simple, Some(d), &[], 0);
                }
                Op::LiF(d, v) => {
                    self.set_reg(d, v.to_bits());
                    self.emit1(sink, DynKind::Simple, Some(d), &[], 0);
                }
                Op::Move(d, s) => {
                    let v = self.reg(s);
                    self.set_reg(d, v);
                    self.emit1(sink, DynKind::Simple, Some(d), &[s], 0);
                }
                Op::IBin(op2, d, a, b) => {
                    let (x, y) = (self.reg(a) as i64, self.reg(b) as i64);
                    let v = self.ibin(op2, x, y)?;
                    self.set_reg(d, v as u64);
                    self.emit1(sink, ikind(op2), Some(d), &[a, b], 0);
                }
                Op::IBinI(op2, d, a, imm) => {
                    let x = self.reg(a) as i64;
                    let v = self.ibin(op2, x, imm)?;
                    self.set_reg(d, v as u64);
                    self.emit1(sink, ikind(op2), Some(d), &[a], 0);
                }
                Op::FBin(op2, d, a, b) => {
                    let (x, y) = (f64::from_bits(self.reg(a)), f64::from_bits(self.reg(b)));
                    let v = match op2 {
                        FBinOp::Add => x + y,
                        FBinOp::Sub => x - y,
                        FBinOp::Mul => x * y,
                        FBinOp::Div => x / y,
                    };
                    self.set_reg(d, v.to_bits());
                    self.emit1(sink, fkind(op2), Some(d), &[a, b], 0);
                }
                Op::ICmp(c, d, a, b) => {
                    let (x, y) = (self.reg(a) as i64, self.reg(b) as i64);
                    self.set_reg(d, icmp(c, x, y) as u64);
                    self.emit1(sink, DynKind::IAlu, Some(d), &[a, b], 0);
                }
                Op::FCmp(c, d, a, b) => {
                    let (x, y) = (f64::from_bits(self.reg(a)), f64::from_bits(self.reg(b)));
                    let r = match c {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    };
                    self.set_reg(d, r as u64);
                    self.emit1(sink, DynKind::FAdd, Some(d), &[a, b], 0);
                }
                Op::CvtIF(d, s) => {
                    let v = (self.reg(s) as i64) as f64;
                    self.set_reg(d, v.to_bits());
                    self.emit1(sink, DynKind::FAdd, Some(d), &[s], 0);
                }
                Op::CvtFI(d, s) => {
                    let v = f64::from_bits(self.reg(s)) as i64;
                    self.set_reg(d, v as u64);
                    self.emit1(sink, DynKind::FAdd, Some(d), &[s], 0);
                }
                Op::La(d, b, off) => {
                    let v = self.base_addr_value(b, off)?;
                    self.set_reg(d, v as u64);
                    self.emit1(sink, DynKind::Simple, Some(d), &[], 0);
                }
                Op::Load(d, m) => {
                    let addr = self.addr_of(&m)?;
                    let bits = self.mem_read(addr)?;
                    self.set_reg(d, bits);
                    let mut srcs = [0u64; 3];
                    let mut n = 0u8;
                    if let BaseAddr::Reg(r) = m.base {
                        srcs[n as usize] = self.key(r);
                        n += 1;
                    }
                    if let Some(r) = m.index {
                        srcs[n as usize] = self.key(r);
                        n += 1;
                    }
                    let dst = Some(self.key(d));
                    sink.event(DynInsn { kind: DynKind::Load, dst, srcs, n_srcs: n, addr });
                }
                Op::Store(m, s) => {
                    let addr = self.addr_of(&m)?;
                    let bits = self.reg(s);
                    self.mem_write(addr, bits)?;
                    let mut srcs = [0u64; 3];
                    let mut n = 0u8;
                    srcs[n as usize] = self.key(s);
                    n += 1;
                    if let BaseAddr::Reg(r) = m.base {
                        srcs[n as usize] = self.key(r);
                        n += 1;
                    }
                    if let Some(r) = m.index {
                        srcs[n as usize] = self.key(r);
                        n += 1;
                    }
                    sink.event(DynInsn { kind: DynKind::Store, dst: None, srcs, n_srcs: n, addr });
                }
                Op::Call { dst, ref func, ref args } => {
                    let &fi = self
                        .func_index
                        .get(func.as_str())
                        .ok_or_else(|| self.err(format!("call to unknown `{func}`")))?;
                    let callee: &'p RtlFunc = &self.prog.funcs[fi];
                    let arg_vals: Vec<u64> = args.iter().map(|&r| self.reg(r)).collect();
                    self.emit1(sink, DynKind::Call, None, args, 0);
                    self.frame_mut().pc = next_pc;
                    self.push_frame(callee, dst)?;
                    sink.enter(fi as u32);
                    for (i, v) in arg_vals.iter().enumerate() {
                        if i < callee.param_regs.len() {
                            let pr = callee.param_regs[i];
                            self.frame_mut().regs[pr as usize] = *v;
                        }
                    }
                    continue 'outer;
                }
                Op::Label(_) => {}
                Op::Jump(l) => {
                    next_pc = self.label_target(l)?;
                    self.emit1(sink, DynKind::Branch { taken: true }, None, &[], 0);
                }
                Op::Branch(c, a, b, l) => {
                    let (x, y) = (self.reg(a) as i64, self.reg(b) as i64);
                    let taken = icmp(c, x, y) != 0;
                    if taken {
                        next_pc = self.label_target(l)?;
                    }
                    self.emit1(sink, DynKind::Branch { taken }, None, &[a, b], 0);
                }
                Op::Ret(v) => {
                    let bits = v.map(|r| self.reg(r)).unwrap_or(0);
                    self.emit1(sink, DynKind::Ret, None, &[], 0);
                    let frame = self.frames.pop().expect("frame");
                    self.sp = frame.base;
                    match self.frames.last_mut() {
                        None => {
                            ret_val = bits as i64;
                            break 'outer;
                        }
                        Some(caller) => {
                            if let Some(d) = frame.ret_to {
                                caller.regs[d as usize] = bits;
                            }
                            let ci = self.func_index[caller.func.name.as_str()] as u32;
                            sink.enter(ci);
                        }
                    }
                    continue 'outer;
                }
            }
            self.frame_mut().pc = next_pc;
        }
        let reg = hli_obs::metrics::cur();
        reg.counter("machine.exec.dyn_insns").add(self.steps);
        reg.counter("machine.exec.loads").add(self.loads);
        reg.counter("machine.exec.stores").add(self.stores);
        reg.counter("machine.exec.calls").add(self.calls);
        Ok(RunResult {
            ret: ret_val,
            global_checksum: self.checksum(),
            dyn_insns: self.steps,
            loads: self.loads,
            stores: self.stores,
            calls: self.calls,
        })
    }

    fn label_target(&mut self, l: Label) -> Result<usize, ExecError> {
        let fi = self
            .func_index
            .get(self.frame().func.name.as_str())
            .copied()
            .expect("current function indexed");
        if let Some(&t) = self.label_cache.get(&(fi, l)) {
            return Ok(t);
        }
        let f = self.frame().func;
        let t = f
            .insns
            .iter()
            .position(|i| matches!(i.op, Op::Label(x) if x == l))
            .ok_or_else(|| self.err(format!("missing label {l}")))?;
        self.label_cache.insert((fi, l), t);
        Ok(t)
    }

    fn ibin(&self, op: IBinOp, x: i64, y: i64) -> Result<i64, ExecError> {
        Ok(match op {
            IBinOp::Add => x.wrapping_add(y),
            IBinOp::Sub => x.wrapping_sub(y),
            IBinOp::Mul => x.wrapping_mul(y),
            IBinOp::Div => {
                if y == 0 {
                    return Err(self.err("integer division by zero"));
                }
                x.wrapping_div(y)
            }
            IBinOp::Rem => {
                if y == 0 {
                    return Err(self.err("integer remainder by zero"));
                }
                x.wrapping_rem(y)
            }
            IBinOp::Shl => x.wrapping_shl(y as u32),
            IBinOp::Shr => x.wrapping_shr(y as u32),
            IBinOp::And => x & y,
            IBinOp::Or => x | y,
            IBinOp::Xor => x ^ y,
        })
    }

    fn emit1(
        &self,
        sink: &mut impl TraceSink,
        kind: DynKind,
        dst: Option<Reg>,
        srcs: &[Reg],
        addr: i64,
    ) {
        let mut s = [0u64; 3];
        let n = srcs.len().min(3);
        for (i, &r) in srcs.iter().take(3).enumerate() {
            s[i] = self.key(r);
        }
        sink.event(DynInsn {
            kind,
            dst: dst.map(|d| self.key(d)),
            srcs: s,
            n_srcs: n as u8,
            addr,
        });
    }
}

fn icmp(c: CmpOp, x: i64, y: i64) -> i64 {
    (match c {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }) as i64
}

fn ikind(op: IBinOp) -> DynKind {
    match op {
        IBinOp::Mul => DynKind::IMul,
        IBinOp::Div | IBinOp::Rem => DynKind::IDiv,
        _ => DynKind::IAlu,
    }
}

fn fkind(op: FBinOp) -> DynKind {
    match op {
        FBinOp::Add | FBinOp::Sub => DynKind::FAdd,
        FBinOp::Mul => DynKind::FMul,
        FBinOp::Div => DynKind::FDiv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_backend::lower::lower_program;
    use hli_lang::compile_to_ast;
    use hli_lang::interp::run_program;

    fn run_both(src: &str) -> (i64, i64, u64, u64) {
        let (p, s) = compile_to_ast(src).unwrap();
        let interp = run_program(&p, &s).unwrap();
        let rtl = lower_program(&p, &s);
        let mach = execute(&rtl).unwrap();
        (interp.ret, mach.ret, interp.global_checksum, mach.global_checksum)
    }

    fn assert_agree(src: &str) {
        let (ri, rm, ci, cm) = run_both(src);
        assert_eq!(ri, rm, "return values diverge");
        assert_eq!(ci, cm, "global checksums diverge");
    }

    #[test]
    fn arithmetic_agrees() {
        assert_agree("int main() { return 1 + 2 * 3 - 4 / 2 + (7 % 3) + (1 << 4) + (256 >> 2); }");
        assert_agree("int main() { return (5 & 3) | (8 ^ 2); }");
        assert_agree("int main() { return -(3 - 10) + !0 + !5 + ~7; }");
    }

    #[test]
    fn float_arithmetic_agrees() {
        assert_agree("double d;\nint main() { d = 1.5 * 4.0 - 0.5; return d * 2.0; }");
        assert_agree("int main() { double x; x = 10.0; return x / 4.0 * 2.0; }");
        assert_agree("int main() { int i; i = 7; double d; d = i; return d * 2.0; }");
    }

    #[test]
    fn comparisons_and_logicals_agree() {
        assert_agree(
            "int main() { return (1 < 2) + (2 <= 2) + (3 > 4) * 10 + (1 == 1) + (2 != 2); }",
        );
        assert_agree("int main() { return (1 && 2) + (0 || 3) * 10 + (0 && 1) * 100; }");
        assert_agree(
            "double a; double b;\nint main() { a = 1.5; b = 2.5; return (a < b) + (a >= b) * 10; }",
        );
    }

    #[test]
    fn short_circuit_side_effects_agree() {
        assert_agree(
            "int g = 0; int set() { g = g + 1; return 1; }\nint main() { int r; r = 0 && set(); r = r + (1 || set()); return g * 10 + r; }",
        );
    }

    #[test]
    fn loops_agree() {
        assert_agree(
            "int main() { int i; int s; s = 0; for (i = 1; i <= 100; i++) s += i; return s; }",
        );
        assert_agree(
            "int main() { int i; int s; i = 0; s = 0; while (i < 50) { s += 2; i++; } return s; }",
        );
        assert_agree("int main() { int i; int s; i = 0; s = 0; do { s += i; i++; } while (i < 10); return s; }");
        assert_agree("int main() { int i; int s; s = 0; for (i = 0; i < 20; i++) { if (i == 10) break; if (i % 2) continue; s += i; } return s; }");
    }

    #[test]
    fn arrays_and_globals_agree() {
        assert_agree(
            "int a[16]; int g = 3;\nint main() { int i; for (i = 0; i < 16; i++) a[i] = i * g; return a[7] + a[15]; }",
        );
        assert_agree(
            "double m[4][4];\nint main() { int i; int j; for (i=0;i<4;i++) for (j=0;j<4;j++) m[i][j] = i * 10.0 + j; return m[3][2]; }",
        );
    }

    #[test]
    fn local_arrays_agree() {
        assert_agree(
            "int main() { int a[8]; int i; for (i=0;i<8;i++) a[i] = i*i; return a[7] + a[0]; }",
        );
    }

    #[test]
    fn pointers_agree() {
        assert_agree("int main() { int x; int *p; x = 5; p = &x; *p = *p + 4; return x; }");
        assert_agree(
            "int a[8];\nint main() { int *p; int s; int i; p = a; s = 0; for (i = 0; i < 8; i++) { *p = i; p++; } for (i = 0; i < 8; i++) s += a[i]; return s; }",
        );
        assert_agree(
            "int a[4];\nint main() { int *p; int *q; p = &a[0]; q = &a[3]; return q - p; }",
        );
    }

    #[test]
    fn calls_agree() {
        assert_agree(
            "int add(int a, int b) { return a + b; }\nint main() { return add(3, add(4, 5)); }",
        );
        assert_agree("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\nint main() { return fib(15); }");
        assert_agree(
            "double scale(double x, double f) { return x * f; }\nint main() { double d; d = scale(3.0, 2.5); return d; }",
        );
    }

    #[test]
    fn stack_args_agree() {
        assert_agree(
            "int f(int a, int b, int c, int d, int e, int g, int h) { return a + b*2 + c*3 + d*4 + e*5 + g*6 + h*7; }\nint main() { return f(1,2,3,4,5,6,7); }",
        );
    }

    #[test]
    fn address_taken_params_agree() {
        assert_agree(
            "void bump(int *p) { *p = *p + 1; }\nint f(int a) { bump(&a); bump(&a); return a; }\nint main() { return f(40); }",
        );
    }

    #[test]
    fn pointer_params_agree() {
        assert_agree(
            "double v[16];\nvoid fill(double *p, int n) { int i; for (i = 0; i < n; i++) p[i] = i * 0.5; }\ndouble total(double *p, int n) { int i; double s; s = 0.0; for (i = 0; i < n; i++) s = s + p[i]; return s; }\nint main() { fill(v, 16); return total(v, 16); }",
        );
    }

    #[test]
    fn division_by_zero_faults_like_interp() {
        let (p, s) = compile_to_ast("int main() { int z; z = 0; return 5 / z; }").unwrap();
        assert!(run_program(&p, &s).is_err());
        let rtl = lower_program(&p, &s);
        let e = execute(&rtl).unwrap_err();
        assert!(e.msg.contains("division by zero"));
    }

    #[test]
    fn null_deref_faults() {
        let (p, s) = compile_to_ast("int main() { int *p; return *p; }").unwrap();
        let rtl = lower_program(&p, &s);
        let e = execute(&rtl).unwrap_err();
        assert!(e.msg.contains("bad load address"));
    }

    #[test]
    fn trace_counts_memory_ops() {
        let (p, s) = compile_to_ast("int g;\nint main() { g = 1; g = g + 1; return g; }").unwrap();
        let rtl = lower_program(&p, &s);
        let (res, trace) = execute_with_trace(&rtl).unwrap();
        let loads = trace.iter().filter(|e| e.kind == DynKind::Load).count() as u64;
        let stores = trace.iter().filter(|e| e.kind == DynKind::Store).count() as u64;
        assert_eq!(loads, res.loads);
        assert_eq!(stores, res.stores);
        assert_eq!(res.stores, 2);
        assert_eq!(res.loads, 2);
    }

    #[test]
    fn trace_addresses_are_real() {
        let (p, s) = compile_to_ast("int a[4];\nint main() { a[2] = 7; return a[2]; }").unwrap();
        let rtl = lower_program(&p, &s);
        let (_, trace) = execute_with_trace(&rtl).unwrap();
        let st = trace.iter().find(|e| e.kind == DynKind::Store).unwrap();
        let ld = trace.iter().find(|e| e.kind == DynKind::Load).unwrap();
        assert_eq!(st.addr, ld.addr);
        assert_eq!(st.addr % 8, 0);
        assert!(st.addr >= GLOBAL_BASE);
    }

    #[test]
    fn scheduled_code_remains_correct() {
        use hli_backend::ddg::DepMode;
        use hli_backend::sched::schedule_program;
        use hli_frontend::generate_hli;
        let src = "double x[32]; double y[32]; int g = 3;\n\
            void axpy(double *p, double *q, int n) { int i; for (i = 0; i < n; i++) p[i] = p[i] * 2.0 + q[i]; }\n\
            int main() {\n int i;\n for (i = 0; i < 32; i++) { x[i] = i; y[i] = i * g; }\n axpy(x, y, 32);\n return x[31] + y[7];\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let interp = run_program(&p, &s).unwrap();
        let rtl = lower_program(&p, &s);
        let hli = generate_hli(&p, &s);
        for mode in [DepMode::GccOnly, DepMode::Combined] {
            let (scheduled, _) = schedule_program(&rtl, &hli, mode, &crate::R4600Config::DEFAULT);
            let res = execute(&scheduled).unwrap();
            assert_eq!(res.ret, interp.ret, "{mode:?} broke the program");
            assert_eq!(res.global_checksum, interp.global_checksum);
        }
    }

    #[test]
    fn unrolled_code_remains_correct() {
        use hli_backend::lower::lower_with_loops;
        use hli_backend::mapping::map_function;
        use hli_backend::unroll::unroll_function;
        use hli_frontend::generate_hli;
        let src = "int a[30];\nint main() {\n int i;\n for (i = 0; i < 30; i++)\n  a[i] = i * 3;\n return a[29] + a[1];\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let interp = run_program(&p, &s).unwrap();
        let (rtl, loops) = lower_with_loops(&p, &s);
        let hli = generate_hli(&p, &s);
        for factor in [2u32, 3, 4, 8] {
            let mut prog = rtl.clone();
            let f = prog.func("main").unwrap().clone();
            let mut entry = hli.entry("main").unwrap().clone();
            let mut map = map_function(&f, &entry);
            let r = unroll_function(
                &f,
                &loops["main"],
                factor,
                Some((&mut entry, &mut map)),
                &crate::R4600Config::DEFAULT,
            );
            assert_eq!(r.unrolled, 1, "factor {factor}");
            *prog.func_mut("main").unwrap() = r.func;
            let res = execute(&prog).unwrap();
            assert_eq!(res.ret, interp.ret, "unroll by {factor} broke the program");
            assert_eq!(res.global_checksum, interp.global_checksum);
        }
    }

    #[test]
    fn nested_calls_with_stack_args_agree() {
        // Three frames deep, six args each: OutArg/InArg areas must resolve
        // through the frame chain correctly.
        assert_agree(
            "int leaf(int a, int b, int c, int d, int e, int f) { return a + b*2 + c*3 + d*4 + e*5 + f*6; }\n\
             int mid(int a, int b, int c, int d, int e, int f) { return leaf(f, e, d, c, b, a) + a; }\n\
             int main() { return mid(1, 2, 3, 4, 5, 6); }",
        );
    }

    #[test]
    fn recursion_with_stack_args_agrees() {
        assert_agree(
            "int acc(int a, int b, int c, int d, int e, int n) {\n\
               if (n <= 0) { return a + b + c + d + e; }\n\
               return acc(a + 1, b, c, d, e + n, n - 1);\n\
             }\n\
             int main() { return acc(0, 1, 2, 3, 4, 10); }",
        );
    }

    #[test]
    fn address_of_array_elements_through_calls_agree() {
        assert_agree(
            "int grid[8][8];\n\
             void put(int *cell, int v) { *cell = v; }\n\
             int main() {\n\
               int i;\n\
               for (i = 0; i < 8; i++) put(&grid[i][7 - i], i * i);\n\
               return grid[3][4] + grid[5][2];\n\
             }",
        );
    }

    #[test]
    fn float_compare_chain_agrees() {
        assert_agree(
            "double v[8];\n\
             int main() {\n\
               int i; int n;\n\
               for (i = 0; i < 8; i++) v[i] = (i - 3) * 0.5;\n\
               n = 0;\n\
               for (i = 0; i < 8; i++) { if (v[i] < 0.0) n++; if (v[i] >= 1.5) n = n + 10; }\n\
               return n;\n\
             }",
        );
    }

    #[test]
    fn cse_and_licm_remain_correct() {
        use hli_backend::cse::cse_function;
        use hli_backend::ddg::DepMode;
        use hli_backend::licm::licm_function;
        use hli_backend::mapping::map_function;
        use hli_frontend::generate_hli;
        let src = "int g = 5; int other; int a[16];\n\
            void touch() { other = other + 1; }\n\
            int main() {\n int i; int s; s = 0;\n for (i = 0; i < 16; i++) { a[i] = g; touch(); s = s + g; }\n return s + a[3] + other;\n}";
        let (p, s) = compile_to_ast(src).unwrap();
        let interp = run_program(&p, &s).unwrap();
        let rtl = lower_program(&p, &s);
        let hli = generate_hli(&p, &s);
        let mut prog = rtl.clone();
        for fname in ["main", "touch"] {
            let f = prog.func(fname).unwrap().clone();
            let mut entry = hli.entry(fname).unwrap().clone();
            let mut map = map_function(&f, &entry);
            let cse = cse_function(
                &f,
                Some((&mut entry, &mut map)),
                DepMode::Combined,
                &crate::R4600Config::DEFAULT,
            );
            let licm = licm_function(
                &cse.func,
                Some((&mut entry, &mut map)),
                DepMode::Combined,
                &crate::R4600Config::DEFAULT,
            );
            *prog.func_mut(fname).unwrap() = licm.func;
        }
        let res = execute(&prog).unwrap();
        assert_eq!(res.ret, interp.ret);
        assert_eq!(res.global_checksum, interp.global_checksum);
    }
}
