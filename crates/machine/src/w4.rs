//! `w4` — a wide in-order (VLIW-ish) timing model: 4-issue, no dynamic
//! reordering, fully exposed latencies.
//!
//! The point of a third target is to make the Table-2 claim *per machine*:
//! the two MIPS models reward HLI scheduling for different reasons (the
//! scalar R4600 for covered load-use delays, the OoO R10000 for loads
//! lifted above stores in the LSQ), and a wide in-order core is different
//! from both — it has slots to fill **every cycle** and no hardware to
//! fill them itself, so the static schedule is the whole story. Exposed
//! ILP pays up to `width`-fold; a dependent chain wastes `width - 1`
//! slots per cycle.
//!
//! Model: up to `width` instructions issue per cycle, strictly in program
//! order (issue stops at the first instruction whose operands are not
//! ready — no skipping). An instruction's result is usable
//! `class_latency` cycles after issue. A taken branch ends its issue
//! group and costs `taken_branch_bubble`; calls/returns end the group and
//! cost `call_overhead` (the same pipeline effects the R4600 model
//! charges).

use crate::exec::{DynInsn, DynKind, RegKey};
use hli_lir::{MachStats, MachineBackend, OpClass, ScheduleConstraints};
use std::collections::HashMap;

/// Latency/shape configuration for the wide in-order core.
#[derive(Debug, Clone, Copy)]
pub struct W4Config {
    /// Issue slots per cycle.
    pub width: usize,
    pub load: u64,
    pub ialu: u64,
    pub imul: u64,
    pub idiv: u64,
    pub fadd: u64,
    pub fmul: u64,
    pub fdiv: u64,
    pub call_overhead: u64,
    pub taken_branch_bubble: u64,
}

impl W4Config {
    /// A plausible wide-issue embedded-class table: shorter arithmetic
    /// pipes than the R4600, a slower cache than the R10000, four slots.
    pub const DEFAULT: W4Config = W4Config {
        width: 4,
        load: 3,
        ialu: 1,
        imul: 6,
        idiv: 24,
        fadd: 3,
        fmul: 4,
        fdiv: 24,
        call_overhead: 2,
        taken_branch_bubble: 2,
    };
}

impl Default for W4Config {
    fn default() -> Self {
        W4Config::DEFAULT
    }
}

/// Timing outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct W4Stats {
    pub cycles: u64,
    pub insns: u64,
    /// Cycles the issue head spent waiting for operands.
    pub stall_cycles: u64,
    /// Issue slots left empty (hazards, group-ending branches/calls).
    pub idle_slots: u64,
}

fn simulate(
    trace: &[DynInsn],
    cfg: &W4Config,
    mut per_func: Option<(&[u32], &mut [u64])>,
) -> W4Stats {
    let mut ready: HashMap<RegKey, u64> = HashMap::new();
    let mut stats = W4Stats::default();
    // `time` is the cycle the current issue group occupies; `slots` how
    // many of its issue slots are filled.
    let mut time: u64 = 0;
    let mut slots: usize = 0;
    let width = cfg.width.max(1);
    for (i, ev) in trace.iter().enumerate() {
        stats.insns += 1;
        let before = time;
        if slots == width {
            time += 1;
            slots = 0;
        }
        let operands_ready = ev
            .sources()
            .iter()
            .map(|r| ready.get(r).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        if operands_ready > time {
            // Head-of-line hazard: the whole machine waits (no reordering),
            // wasting the rest of this group and every intervening cycle.
            stats.stall_cycles += operands_ready - time;
            stats.idle_slots += (width - slots) as u64 + (operands_ready - time - 1) * width as u64;
            time = operands_ready;
            slots = 0;
        }
        slots += 1;
        if let Some(d) = ev.dst {
            ready.insert(d, time + cfg.class_latency(ev.kind.class()));
        }
        match ev.kind {
            DynKind::Branch { taken: true } => {
                stats.idle_slots += (width - slots) as u64;
                time += 1 + cfg.taken_branch_bubble;
                slots = 0;
            }
            DynKind::Call | DynKind::Ret => {
                stats.idle_slots += (width - slots) as u64;
                time += 1 + cfg.call_overhead;
                slots = 0;
            }
            _ => {}
        }
        // Charge the full advance to the owning function; per-function
        // sums then equal the total exactly (the trailing partial group
        // is charged to the last event below).
        if let Some((funcs, bins)) = per_func.as_mut() {
            bins[funcs[i] as usize] += time - before;
        }
    }
    if slots > 0 {
        // The last partially-filled group still takes its cycle.
        time += 1;
        if let Some((funcs, bins)) = per_func.as_mut() {
            if let Some(&f) = funcs.last() {
                bins[f as usize] += 1;
            }
        }
    }
    stats.cycles = time;
    let reg = hli_obs::metrics::cur();
    reg.counter("machine.w4.cycles").add(stats.cycles);
    reg.counter("machine.w4.insns").add(stats.insns);
    reg.counter("machine.w4.stall_cycles").add(stats.stall_cycles);
    reg.counter("machine.w4.idle_slots").add(stats.idle_slots);
    stats
}

/// Simulate the trace on the wide in-order pipeline.
pub fn w4_cycles(trace: &[DynInsn], cfg: &W4Config) -> W4Stats {
    simulate(trace, cfg, None)
}

/// Like [`w4_cycles`], but also attributes cycles to functions; the
/// returned bins sum to `stats.cycles` exactly.
pub fn w4_cycles_per_func(
    trace: &[DynInsn],
    funcs: &[u32],
    nfuncs: usize,
    cfg: &W4Config,
) -> (W4Stats, Vec<u64>) {
    debug_assert_eq!(trace.len(), funcs.len());
    let mut bins = vec![0u64; nfuncs];
    let stats = simulate(trace, cfg, Some((funcs, &mut bins)));
    (stats, bins)
}

impl MachineBackend for W4Config {
    fn name(&self) -> &'static str {
        "w4"
    }

    fn class_latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Load => self.load,
            OpClass::IMul => self.imul,
            OpClass::IDiv => self.idiv,
            OpClass::FAdd => self.fadd,
            OpClass::FMul => self.fmul,
            OpClass::FDiv => self.fdiv,
            _ => self.ialu,
        }
    }

    fn schedule_constraints(&self) -> ScheduleConstraints {
        ScheduleConstraints { in_order: true, issue_width: self.width as u32, window: 1 }
    }

    fn cycles(&self, trace: &[DynInsn]) -> MachStats {
        w4_cycles(trace, self).into()
    }

    fn cycles_per_func(
        &self,
        trace: &[DynInsn],
        funcs: &[u32],
        nfuncs: usize,
    ) -> (MachStats, Vec<u64>) {
        let (stats, bins) = w4_cycles_per_func(trace, funcs, nfuncs, self);
        (stats.into(), bins)
    }
}

impl From<W4Stats> for MachStats {
    fn from(s: W4Stats) -> MachStats {
        MachStats {
            cycles: s.cycles,
            insns: s.insns,
            detail: vec![
                ("stall_cycles", s.stall_cycles),
                ("idle_slots", s.idle_slots),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(kind: DynKind, dst: Option<RegKey>, srcs: &[RegKey]) -> DynInsn {
        let mut s = [0u64; 3];
        for (i, &r) in srcs.iter().take(3).enumerate() {
            s[i] = r;
        }
        DynInsn { kind, dst, srcs: s, n_srcs: srcs.len() as u8, addr: 0 }
    }

    #[test]
    fn independent_insns_pack_four_wide() {
        let t: Vec<DynInsn> = (0..16).map(|i| ins(DynKind::IAlu, Some(i), &[])).collect();
        let s = w4_cycles(&t, &W4Config::default());
        assert_eq!(s.cycles, 4, "16 independent ops in 4 groups");
        assert_eq!(s.stall_cycles, 0);
        assert_eq!(s.idle_slots, 0);
    }

    #[test]
    fn dependent_chain_wastes_the_width() {
        let mut t = vec![ins(DynKind::IAlu, Some(0), &[])];
        for i in 1..8u64 {
            t.push(ins(DynKind::IAlu, Some(i), &[i - 1]));
        }
        let s = w4_cycles(&t, &W4Config::default());
        assert_eq!(s.cycles, 8, "one issue per cycle down a chain");
        assert!(s.idle_slots >= 7 * 3, "three empty slots per chained cycle");
    }

    #[test]
    fn head_of_line_load_blocks_everything() {
        // Independent work *behind* the load's consumer cannot pass it:
        // the machine is in-order, so the whole group waits.
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
            ins(DynKind::IAlu, Some(3), &[]),
        ];
        let s = w4_cycles(&t, &W4Config::default());
        assert!(s.stall_cycles >= W4Config::DEFAULT.load - 1);
        // Scheduling the independent op between load and use hides it.
        let sched = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(3), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
        ];
        let s2 = w4_cycles(&sched, &W4Config::default());
        assert!(s2.cycles <= s.cycles);
    }

    #[test]
    fn taken_branch_ends_the_group() {
        let t = vec![
            ins(DynKind::IAlu, Some(1), &[]),
            ins(DynKind::Branch { taken: true }, None, &[]),
            ins(DynKind::IAlu, Some(2), &[]),
        ];
        let s = w4_cycles(&t, &W4Config::default());
        // Group 1 (alu + branch) at cycle 0, bubble, then the next group.
        assert_eq!(s.cycles, 1 + 1 + W4Config::DEFAULT.taken_branch_bubble + 1 - 1);
        assert!(s.idle_slots >= 2, "branch leaves its group's tail empty");
    }

    #[test]
    fn per_func_bins_sum_to_total() {
        let t = vec![
            ins(DynKind::Load, Some(1), &[]),
            ins(DynKind::IAlu, Some(2), &[1]),
            ins(DynKind::Call, None, &[]),
            ins(DynKind::FDiv, Some(3), &[]),
            ins(DynKind::FAdd, Some(4), &[3]),
            ins(DynKind::Ret, None, &[]),
        ];
        let funcs = vec![0, 0, 0, 1, 1, 1];
        let cfg = W4Config::default();
        let (stats, bins) = w4_cycles_per_func(&t, &funcs, 2, &cfg);
        assert_eq!(bins.iter().sum::<u64>(), stats.cycles);
        assert_eq!(stats, w4_cycles(&t, &cfg), "attribution must not perturb timing");
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = w4_cycles(&[], &W4Config::default());
        assert_eq!(s.cycles, 0);
        assert_eq!(s.insns, 0);
    }
}
