//! The NDJSON wire protocol — request/response types and their canonical
//! codecs, normative in docs/SERVE.md ("Wire framing").
//!
//! Emission is canonical: a fixed field order, `", "` separators, full
//! (defaulted) `flags` objects. Parsing is lenient where the doc says so
//! (`flags` and its fields may be omitted) and strict everywhere else.
//! `crates/serve/tests/docpin.rs` parses the doc's example lines and
//! re-emits them byte-for-byte, so these codecs and the doc cannot
//! drift apart.
//!
//! 64-bit hashes travel as 16-hex-digit *strings* (`key`, `sched_hash`):
//! JSON numbers round-trip through `f64` in our std-only parser and
//! would silently lose low bits past 2^53.

use hli_backend::ddg::{DepMode, QueryStats};
use hli_machine::MachineBackend;
use hli_obs::json::{self, escape_into, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Dependence-combination mode of the scheduling pass (a cache-key
/// component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// `gcc_value * hli_value` — the paper's shipped configuration.
    #[default]
    Combined,
    /// GCC's own dependence test only (the no-HLI baseline).
    GccOnly,
    /// HLI answers only (the paper's measured-not-shipped column).
    HliOnly,
}

impl Mode {
    /// The canonical wire string (also the cache-key component bytes).
    pub fn canonical(&self) -> &'static str {
        match self {
            Mode::Combined => "combined",
            Mode::GccOnly => "gcc-only",
            Mode::HliOnly => "hli-only",
        }
    }

    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "combined" => Some(Mode::Combined),
            "gcc-only" => Some(Mode::GccOnly),
            "hli-only" => Some(Mode::HliOnly),
            _ => None,
        }
    }

    /// The back-end driver mode this wire mode selects.
    pub fn dep_mode(&self) -> DepMode {
        match self {
            Mode::Combined => DepMode::Combined,
            Mode::GccOnly => DepMode::GccOnly,
            Mode::HliOnly => DepMode::HliOnly,
        }
    }
}

/// Target machine model (a cache-key component): picks the scheduler's
/// latency table, so different machines genuinely produce different
/// schedules for latency-sensitive code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Machine {
    /// In-order MIPS R4600-ish model.
    #[default]
    R4600,
    /// Out-of-order MIPS R10000-ish model.
    R10000,
    /// Wide 4-issue in-order model with exposed latencies.
    W4,
}

impl Machine {
    pub fn canonical(&self) -> &'static str {
        match self {
            Machine::R4600 => "r4600",
            Machine::R10000 => "r10000",
            Machine::W4 => "w4",
        }
    }

    pub fn parse(s: &str) -> Option<Machine> {
        match s {
            "r4600" => Some(Machine::R4600),
            "r10000" => Some(Machine::R10000),
            "w4" => Some(Machine::W4),
            _ => None,
        }
    }

    /// The machine backend the scheduler runs against — the same model
    /// the simulators price traces with (the single-latency-source
    /// contract; the serve layer holds no latency table of its own).
    pub fn backend(&self) -> &'static dyn MachineBackend {
        hli_machine::backend_by_name(self.canonical())
            .expect("every wire machine is in the backend registry")
    }
}

/// Per-program compile flags. `mode` and `machine` are cache-key
/// components; `dump` only widens the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileFlags {
    pub mode: Mode,
    pub machine: Machine,
    /// Return the scheduled RTL text per function.
    pub dump: bool,
}

impl CompileFlags {
    fn emit_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"mode\": \"{}\", \"machine\": \"{}\", \"dump\": {}}}",
            self.mode.canonical(),
            self.machine.canonical(),
            self.dump
        );
    }

    fn from_json(v: Option<&Json>) -> Result<CompileFlags, String> {
        let mut flags = CompileFlags::default();
        let Some(v) = v else { return Ok(flags) };
        if let Some(m) = v.get("mode") {
            let s = m.as_str().ok_or("`flags.mode` must be a string")?;
            flags.mode = Mode::parse(s).ok_or_else(|| format!("unknown mode `{s}`"))?;
        }
        if let Some(m) = v.get("machine") {
            let s = m.as_str().ok_or("`flags.machine` must be a string")?;
            flags.machine = Machine::parse(s).ok_or_else(|| format!("unknown machine `{s}`"))?;
        }
        if let Some(d) = v.get("dump") {
            flags.dump = match d {
                Json::Bool(b) => *b,
                _ => return Err("`flags.dump` must be a bool".into()),
            };
        }
        Ok(flags)
    }
}

/// One program inside a compile batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReq {
    pub name: String,
    pub source: String,
    pub flags: CompileFlags,
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Compile { id: u64, programs: Vec<ProgramReq> },
    Stats { id: u64 },
    Shutdown { id: u64 },
}

fn num_u64(v: &Json) -> Option<u64> {
    let n = v.as_num()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64).then_some(n as u64)
}

fn req_id(v: &Json) -> Result<u64, String> {
    v.get("id")
        .and_then(num_u64)
        .ok_or_else(|| "missing or non-integer `id`".to_string())
}

impl Request {
    /// Parse one request line (the inverse of [`Request::to_line`]).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("parse error: {e}"))?;
        let op = v.get("op").and_then(Json::as_str).ok_or("missing string field `op`")?;
        match op {
            "compile" => {
                let id = req_id(&v)?;
                let programs = v
                    .get("programs")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field `programs`")?
                    .iter()
                    .map(|p| {
                        let field = |k: &str| {
                            p.get(k)
                                .and_then(Json::as_str)
                                .map(str::to_owned)
                                .ok_or_else(|| format!("program missing string field `{k}`"))
                        };
                        Ok(ProgramReq {
                            name: field("name")?,
                            source: field("source")?,
                            flags: CompileFlags::from_json(p.get("flags"))?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Request::Compile { id, programs })
            }
            "stats" => Ok(Request::Stats { id: req_id(&v)? }),
            "shutdown" => Ok(Request::Shutdown { id: req_id(&v)? }),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Canonical one-line rendering (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        match self {
            Request::Compile { id, programs } => {
                let _ = write!(s, "{{\"op\": \"compile\", \"id\": {id}, \"programs\": [");
                for (i, p) in programs.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str("{\"name\": ");
                    escape_into(&mut s, &p.name);
                    s.push_str(", \"source\": ");
                    escape_into(&mut s, &p.source);
                    s.push_str(", \"flags\": ");
                    p.flags.emit_into(&mut s);
                    s.push('}');
                }
                s.push_str("]}");
            }
            Request::Stats { id } => {
                let _ = write!(s, "{{\"op\": \"stats\", \"id\": {id}}}");
            }
            Request::Shutdown { id } => {
                let _ = write!(s, "{{\"op\": \"shutdown\", \"id\": {id}}}");
            }
        }
        s
    }
}

/// One function's answer inside a compile response.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncResult {
    pub function: String,
    /// 16-hex cache key.
    pub key: String,
    /// `true` when answered from the cache (`"source": "cache"`).
    pub cached: bool,
    /// 16-hex FNV-1a 64 of the scheduled RTL dump.
    pub sched_hash: String,
    pub stats: QueryStats,
    /// The scheduled RTL text, present iff the request set `flags.dump`.
    pub dump: Option<String>,
}

/// One program's answer: name-sorted function results, or the front-end
/// diagnostic that stopped it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramResult {
    pub program: String,
    pub outcome: Result<Vec<FuncResult>, String>,
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Compile {
        id: u64,
        results: Vec<ProgramResult>,
        hits: u64,
        misses: u64,
    },
    Stats {
        id: u64,
        stats: BTreeMap<String, u64>,
    },
    Shutdown {
        id: u64,
    },
    Error {
        id: Option<u64>,
        error: String,
    },
}

fn emit_stats(out: &mut String, q: &QueryStats) {
    let _ = write!(
        out,
        "{{\"total_tests\": {}, \"gcc_yes\": {}, \"hli_yes\": {}, \
         \"combined_yes\": {}, \"call_queries\": {}}}",
        q.total_tests, q.gcc_yes, q.hli_yes, q.combined_yes, q.call_queries
    );
}

fn parse_stats(v: &Json) -> Result<QueryStats, String> {
    let f = |k: &str| {
        v.get(k)
            .and_then(num_u64)
            .ok_or_else(|| format!("stats missing integer field `{k}`"))
    };
    Ok(QueryStats {
        total_tests: f("total_tests")?,
        gcc_yes: f("gcc_yes")?,
        hli_yes: f("hli_yes")?,
        combined_yes: f("combined_yes")?,
        call_queries: f("call_queries")?,
    })
}

impl Response {
    fn head(id: Option<u64>) -> String {
        let mut s = format!(
            "{{\"schema_version\": {}, \"serve_version\": {}, \"id\": ",
            hli_obs::SCHEMA_VERSION,
            crate::SERVE_VERSION
        );
        match id {
            Some(id) => {
                let _ = write!(s, "{id}");
            }
            None => s.push_str("null"),
        }
        s
    }

    /// Canonical one-line rendering (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Compile { id, results, hits, misses } => {
                let mut s = Self::head(Some(*id));
                s.push_str(", \"results\": [");
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str("{\"program\": ");
                    escape_into(&mut s, &r.program);
                    match &r.outcome {
                        Ok(funcs) => {
                            s.push_str(", \"status\": \"ok\", \"functions\": [");
                            for (j, f) in funcs.iter().enumerate() {
                                if j > 0 {
                                    s.push_str(", ");
                                }
                                s.push_str("{\"function\": ");
                                escape_into(&mut s, &f.function);
                                let _ = write!(
                                    s,
                                    ", \"key\": \"{}\", \"source\": \"{}\", \
                                     \"sched_hash\": \"{}\", \"stats\": ",
                                    f.key,
                                    if f.cached { "cache" } else { "cold" },
                                    f.sched_hash
                                );
                                emit_stats(&mut s, &f.stats);
                                if let Some(d) = &f.dump {
                                    s.push_str(", \"dump\": ");
                                    escape_into(&mut s, d);
                                }
                                s.push('}');
                            }
                            s.push_str("]}");
                        }
                        Err(e) => {
                            s.push_str(", \"status\": \"error\", \"error\": ");
                            escape_into(&mut s, e);
                            s.push('}');
                        }
                    }
                }
                let _ = write!(s, "], \"cache\": {{\"hits\": {hits}, \"misses\": {misses}}}}}");
                s
            }
            Response::Stats { id, stats } => {
                let mut s = Self::head(Some(*id));
                s.push_str(", \"stats\": {");
                for (i, (k, v)) in stats.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    escape_into(&mut s, k);
                    let _ = write!(s, ": {v}");
                }
                s.push_str("}}");
                s
            }
            Response::Shutdown { id } => {
                let mut s = Self::head(Some(*id));
                s.push_str(", \"ok\": true}");
                s
            }
            Response::Error { id, error } => {
                let mut s = Self::head(*id);
                s.push_str(", \"error\": ");
                escape_into(&mut s, error);
                s.push('}');
                s
            }
        }
    }

    /// Parse one response line (the inverse of [`Response::to_line`]).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = json::parse(line).map_err(|e| format!("parse error: {e}"))?;
        let id = match v.get("id") {
            Some(Json::Null) => None,
            Some(n) => Some(num_u64(n).ok_or("`id` must be an integer or null")?),
            None => return Err("missing field `id`".into()),
        };
        if let Some(e) = v.get("error") {
            let error = e.as_str().ok_or("`error` must be a string")?.to_string();
            return Ok(Response::Error { id, error });
        }
        let id = id.ok_or("non-error response with null `id`")?;
        if let Some(results) = v.get("results") {
            let results = results
                .as_arr()
                .ok_or("`results` must be an array")?
                .iter()
                .map(parse_program_result)
                .collect::<Result<Vec<_>, String>>()?;
            let cache = v.get("cache").ok_or("missing field `cache`")?;
            let hits = cache.get("hits").and_then(num_u64).ok_or("missing `cache.hits`")?;
            let misses = cache.get("misses").and_then(num_u64).ok_or("missing `cache.misses`")?;
            return Ok(Response::Compile { id, results, hits, misses });
        }
        if let Some(stats) = v.get("stats") {
            let Json::Obj(m) = stats else {
                return Err("`stats` must be an object".into());
            };
            let stats = m
                .iter()
                .map(|(k, v)| {
                    num_u64(v)
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("non-integer stats value for `{k}`"))
                })
                .collect::<Result<BTreeMap<_, _>, String>>()?;
            return Ok(Response::Stats { id, stats });
        }
        if v.get("ok") == Some(&Json::Bool(true)) {
            return Ok(Response::Shutdown { id });
        }
        Err("unrecognized response shape".into())
    }
}

fn parse_program_result(v: &Json) -> Result<ProgramResult, String> {
    let program = v
        .get("program")
        .and_then(Json::as_str)
        .ok_or("result missing `program`")?
        .to_string();
    let status = v.get("status").and_then(Json::as_str).ok_or("result missing `status`")?;
    let outcome = match status {
        "ok" => Ok(v
            .get("functions")
            .and_then(Json::as_arr)
            .ok_or("ok result missing `functions`")?
            .iter()
            .map(parse_func_result)
            .collect::<Result<Vec<_>, String>>()?),
        "error" => Err(v
            .get("error")
            .and_then(Json::as_str)
            .ok_or("error result missing `error`")?
            .to_string()),
        other => return Err(format!("unknown status `{other}`")),
    };
    Ok(ProgramResult { program, outcome })
}

fn parse_func_result(v: &Json) -> Result<FuncResult, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("function result missing `{k}`"))
    };
    let cached = match field("source")?.as_str() {
        "cache" => true,
        "cold" => false,
        other => return Err(format!("unknown source `{other}`")),
    };
    Ok(FuncResult {
        function: field("function")?,
        key: field("key")?,
        cached,
        sched_hash: field("sched_hash")?,
        stats: parse_stats(v.get("stats").ok_or("function result missing `stats`")?)?,
        dump: v.get("dump").and_then(Json::as_str).map(str::to_owned),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_req() -> Request {
        Request::Compile {
            id: 7,
            programs: vec![ProgramReq {
                name: "p\"0".into(),
                source: "int main() {\n    return 0;\n}\n".into(),
                flags: CompileFlags { dump: true, ..Default::default() },
            }],
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            compile_req(),
            Request::Stats { id: 0 },
            Request::Shutdown { id: 9 },
        ] {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
            // Canonical emission is a fixed point.
            assert_eq!(Request::parse(&line).unwrap().to_line(), line);
        }
    }

    #[test]
    fn request_flags_default_when_omitted() {
        let r = Request::parse(
            r#"{"op": "compile", "id": 1, "programs": [{"name": "a", "source": "s"}]}"#,
        )
        .unwrap();
        let Request::Compile { programs, .. } = r else { panic!() };
        assert_eq!(programs[0].flags, CompileFlags::default());
        let r = Request::parse(
            r#"{"op": "compile", "id": 1, "programs": [{"name": "a", "source": "s", "flags": {"machine": "r10000"}}]}"#,
        )
        .unwrap();
        let Request::Compile { programs, .. } = r else { panic!() };
        assert_eq!(programs[0].flags.machine, Machine::R10000);
        assert_eq!(programs[0].flags.mode, Mode::Combined);
    }

    #[test]
    fn request_rejects_malformed() {
        for bad in [
            "",
            "{}",
            r#"{"op": "compile"}"#,
            r#"{"op": "compile", "id": 1}"#,
            r#"{"op": "compile", "id": -1, "programs": []}"#,
            r#"{"op": "nope", "id": 1}"#,
            r#"{"op": "compile", "id": 1, "programs": [{"name": "a"}]}"#,
            r#"{"op": "compile", "id": 1, "programs": [{"name": "a", "source": "s", "flags": {"mode": "O3"}}]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Compile {
            id: 7,
            results: vec![
                ProgramResult {
                    program: "a".into(),
                    outcome: Ok(vec![FuncResult {
                        function: "f0".into(),
                        key: "0123456789abcdef".into(),
                        cached: true,
                        sched_hash: "fedcba9876543210".into(),
                        stats: QueryStats {
                            total_tests: 4,
                            gcc_yes: 3,
                            hli_yes: 2,
                            combined_yes: 2,
                            call_queries: 1,
                        },
                        dump: Some("func f0:\n  1 @2 nop\n".into()),
                    }]),
                },
                ProgramResult {
                    program: "b".into(),
                    outcome: Err("line 3: expected `;`".into()),
                },
            ],
            hits: 1,
            misses: 0,
        };
        let stats = Response::Stats {
            id: 8,
            stats: [("serve.batches".to_string(), 3u64)].into_iter().collect(),
        };
        let err = Response::Error { id: None, error: "parse error: bad".into() };
        for r in [resp, stats, Response::Shutdown { id: 9 }, err] {
            let line = r.to_line();
            assert_eq!(Response::parse(&line).unwrap(), r, "{line}");
            assert_eq!(Response::parse(&line).unwrap().to_line(), line);
        }
    }

    #[test]
    fn machines_have_distinct_latency_models() {
        use hli_machine::OpClass;
        let pairs = [
            (Machine::R4600, Machine::R10000),
            (Machine::R4600, Machine::W4),
            (Machine::R10000, Machine::W4),
        ];
        for (a, b) in pairs {
            assert!(
                OpClass::ALL
                    .iter()
                    .any(|&c| a.backend().class_latency(c) != b.backend().class_latency(c)),
                "{} and {} price every class identically",
                a.canonical(),
                b.canonical()
            );
        }
    }

    #[test]
    fn wire_machines_round_trip_through_the_registry() {
        for m in [Machine::R4600, Machine::R10000, Machine::W4] {
            assert_eq!(Machine::parse(m.canonical()), Some(m));
            assert_eq!(m.backend().name(), m.canonical());
        }
        assert_eq!(Machine::parse("r8000"), None);
    }
}
