//! The daemon itself: batch handling, cache probing, pool fan-out of
//! misses, and the stable-order commit that keeps every observability
//! artifact byte-identical across cache states and job counts
//! (docs/SERVE.md, "Determinism contract").
//!
//! Request flow for one `compile` batch:
//!
//! 1. **Prep** (caller thread, request order): front-end + HLI
//!    generation + lowering per program; derive each function's
//!    [`CacheKey`] from its pre-schedule dump, HLI unit, and flags.
//! 2. **Probe** (caller thread, one cache lock): look every key up;
//!    hits keep their [`CachedObject`], misses become work items.
//! 3. **Fan out**: misses run over [`hli_pool::run`] — each function is
//!    scheduled alone (its whole program's HLI stays visible through the
//!    lookup, so call REF/MOD answers match a monolithic compile) under
//!    an [`hli_obs::capture_cfg`] with provenance forced on.
//! 4. **Commit** (caller thread, request order × name-sorted function
//!    order): hits replay their stored shard, misses commit their fresh
//!    capture and write the cache object. The interleaving is
//!    position-stable, which is the whole determinism argument: a shard's
//!    content is the same whether it was captured or replayed.

use crate::cache::{CachedObject, DiskCache, ShardData};
use crate::key::{fnv1a, function_key, CacheKey};
use crate::proto::{CompileFlags, FuncResult, ProgramReq, ProgramResult, Request, Response};
use hli_backend::ddg::QueryStats;
use hli_backend::driver::{schedule_program_passes, PassSpec};
use hli_backend::lower::lower_program;
use hli_backend::rtl::{dump_func, RtlProgram};
use hli_core::image::EntryRef;
use hli_core::HliFile;
use hli_obs::json::{self, Json};
use hli_obs::metrics;
use hli_obs::{capture_cfg, CaptureCfg, ObsShard};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cache root (`<cache_dir>/v1/objects/…`). Created if absent.
    pub cache_dir: PathBuf,
    /// Object-byte budget for LRU eviction; `0` = unlimited.
    pub cache_max_bytes: u64,
    /// Pool workers for miss fan-out (`0` = one per CPU, `1` = inline).
    pub jobs: usize,
}

/// A running daemon: one instance per cache directory, any number of
/// sequential connections.
pub struct Server {
    cfg: ServeConfig,
    cache: Mutex<DiskCache>,
}

/// One function awaiting its answer (prep output, probe in/out).
struct FuncPlan {
    /// Index into the lowered program's `funcs`.
    fi: usize,
    name: String,
    key: CacheKey,
    hit: Option<CachedObject>,
}

/// One successfully prepped program.
struct PrepProg {
    rtl: RtlProgram,
    hli: HliFile,
    flags: CompileFlags,
    /// Name-sorted — the commit and response order.
    plans: Vec<FuncPlan>,
}

fn prep_program(req: &ProgramReq) -> Result<PrepProg, String> {
    let (prog, sema) = hli_lang::compile_to_ast(&req.source)?;
    let hli = hli_frontend::generate_hli(&prog, &sema);
    let rtl = lower_program(&prog, &sema);
    let mut plans: Vec<FuncPlan> = rtl
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let dump = dump_func(f);
            let entry = hli.entry(&f.name).map(EntryRef::Owned);
            let key = function_key(&dump, entry.as_ref(), &req.flags);
            FuncPlan { fi, name: f.name.clone(), key, hit: None }
        })
        .collect();
    plans.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(PrepProg { rtl, hli, flags: req.flags, plans })
}

/// Schedule one function of a prepped program (a cache miss), returning
/// its scheduled dump and query stats. Runs inside a capture on a pool
/// worker.
fn compile_one(prep: &PrepProg, plan: &FuncPlan) -> (String, QueryStats) {
    let single = RtlProgram {
        funcs: vec![prep.rtl.funcs[plan.fi].clone()],
        global_addr: prep.rtl.global_addr.clone(),
        global_init: prep.rtl.global_init.clone(),
        globals_end: prep.rtl.globals_end,
    };
    let mach = prep.flags.machine.backend();
    let passes = [PassSpec { mode: prep.flags.mode.dep_mode(), caches: None }];
    let mut out = schedule_program_passes(
        &single,
        &|n| prep.hli.entry(n).map(EntryRef::Owned),
        &passes,
        mach,
        1,
    );
    let (sched, stats) = out.pop().expect("one pass in, one result out");
    (dump_func(&sched.funcs[0]), stats)
}

impl Server {
    /// Open (or create) the cache and stand the daemon up.
    pub fn new(cfg: ServeConfig) -> io::Result<Server> {
        let cache = DiskCache::open(&cfg.cache_dir, cfg.cache_max_bytes)?;
        Ok(Server { cfg, cache: Mutex::new(cache) })
    }

    /// Handle one request line; returns the response line (no trailing
    /// newline) and whether the request asked the daemon to shut down.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match Request::parse(line) {
            Ok(Request::Compile { id, programs }) => {
                (self.handle_compile(id, &programs).to_line(), false)
            }
            Ok(Request::Stats { id }) => (self.handle_stats(id).to_line(), false),
            Ok(Request::Shutdown { id }) => (Response::Shutdown { id }.to_line(), true),
            Err(error) => {
                metrics::cur().counter("serve.errors").inc();
                // Best-effort id echo: the line may still be valid JSON
                // with an integer id even though the request is not.
                let id = json::parse(line).ok().and_then(|v| {
                    v.get("id")
                        .and_then(Json::as_num)
                        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                        .map(|n| n as u64)
                });
                (Response::Error { id, error }.to_line(), false)
            }
        }
    }

    fn handle_compile(&self, id: u64, programs: &[ProgramReq]) -> Response {
        let reg = metrics::cur();
        reg.counter("serve.batches").inc();
        reg.counter("serve.requests").add(programs.len() as u64);
        reg.histogram("serve.batch.programs").observe(programs.len() as u64);

        // 1. Prep, in request order.
        let mut preps: Vec<Result<PrepProg, String>> = programs.iter().map(prep_program).collect();

        // 2. Probe the cache for every function, under one lock.
        let mut misses: Vec<(usize, usize)> = Vec::new();
        {
            let mut cache = self.cache.lock().unwrap();
            for (pi, prep) in preps.iter_mut().enumerate() {
                let Ok(prep) = prep else { continue };
                for (qi, plan) in prep.plans.iter_mut().enumerate() {
                    plan.hit = cache.get(plan.key, &plan.name);
                    if plan.hit.is_none() {
                        misses.push((pi, qi));
                    }
                }
            }
        }

        // 3. Fan the misses out. Provenance is forced on regardless of
        // whether a sink is active: the shard goes into the cache, and a
        // cache object must be complete enough to replay under any
        // future observability configuration.
        let cfg = CaptureCfg { provenance: true, trace: false };
        let compiled: Vec<((String, QueryStats), ObsShard)> =
            hli_pool::run(self.cfg.jobs, &misses, |_w, &(pi, qi)| {
                let prep = preps[pi].as_ref().expect("misses index only prepped programs");
                capture_cfg(cfg, || compile_one(prep, &prep.plans[qi]))
            });
        let mut compiled: Vec<Option<((String, QueryStats), ObsShard)>> =
            compiled.into_iter().map(Some).collect();
        let miss_slot: std::collections::HashMap<(usize, usize), usize> =
            misses.iter().enumerate().map(|(i, &mf)| (mf, i)).collect();

        // 4. Commit + assemble, request order × name-sorted functions.
        let (mut hits, mut miss_count) = (0u64, 0u64);
        let mut results: Vec<ProgramResult> = Vec::with_capacity(programs.len());
        let mut cache = self.cache.lock().unwrap();
        for (pi, (req, prep)) in programs.iter().zip(preps).enumerate() {
            let prep = match prep {
                Err(e) => {
                    reg.counter("serve.errors").inc();
                    results.push(ProgramResult { program: req.name.clone(), outcome: Err(e) });
                    continue;
                }
                Ok(p) => p,
            };
            let mut funcs: Vec<FuncResult> = Vec::with_capacity(prep.plans.len());
            for (qi, plan) in prep.plans.iter().enumerate() {
                let (obj, cached) = match &plan.hit {
                    Some(obj) => {
                        hits += 1;
                        hli_obs::commit(obj.shard.clone().into_shard());
                        (obj.clone(), true)
                    }
                    None => {
                        miss_count += 1;
                        let slot = miss_slot[&(pi, qi)];
                        let ((dump, stats), shard) =
                            compiled[slot].take().expect("each miss compiled exactly once");
                        let shard_data = ShardData::from_shard(&shard);
                        hli_obs::commit(shard);
                        let obj = CachedObject {
                            key: plan.key,
                            function: plan.name.clone(),
                            sched_hash: fnv1a(dump.as_bytes()),
                            dump,
                            stats,
                            shard: shard_data,
                        };
                        if cache.put(&obj).is_err() {
                            // The answer is still correct; only the next
                            // compile of this function pays again.
                            reg.counter("serve.errors").inc();
                        }
                        (obj, false)
                    }
                };
                funcs.push(FuncResult {
                    function: plan.name.clone(),
                    key: plan.key.hex(),
                    cached,
                    sched_hash: format!("{:016x}", obj.sched_hash),
                    stats: obj.stats,
                    dump: prep.flags.dump.then(|| obj.dump.clone()),
                });
            }
            results.push(ProgramResult { program: req.name.clone(), outcome: Ok(funcs) });
        }
        Response::Compile { id, results, hits, misses: miss_count }
    }

    fn handle_stats(&self, id: u64) -> Response {
        let snap = metrics::cur().snapshot();
        let stats: BTreeMap<String, u64> = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("serve."))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        Response::Stats { id, stats }
    }

    /// Serve one NDJSON connection until EOF or a `shutdown` request.
    /// Returns `true` iff shutdown was requested (the response is
    /// written before returning).
    pub fn run<R: BufRead, W: Write>(&self, reader: R, writer: &mut W) -> io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = self.handle_line(&line);
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Accept clients on a Unix socket, one at a time, until a client
    /// sends `shutdown`. A client I/O error drops that connection; the
    /// daemon keeps listening. The socket file is (re)created on bind
    /// and removed on orderly shutdown.
    pub fn run_unix(&self, path: &Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        for stream in listener.incoming() {
            let stream = stream?;
            let reader = io::BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            match self.run(reader, &mut writer) {
                Ok(true) => break,
                Ok(false) | Err(_) => continue,
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hli-serve-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn server(dir: &Path, jobs: usize) -> Server {
        Server::new(ServeConfig { cache_dir: dir.to_path_buf(), cache_max_bytes: 0, jobs }).unwrap()
    }

    const SRC: &str = "int a[8];\n\
        int f(int *p, int *q, int n) {\n\
            int i;\n\
            for (i = 0; i < n; i++) a[i] = p[i] + q[0];\n\
            return a[0];\n\
        }\n\
        int main() { return f(a, a, 4); }\n";

    fn compile_line(id: u64, name: &str, source: &str) -> String {
        Request::Compile {
            id,
            programs: vec![ProgramReq {
                name: name.into(),
                source: source.into(),
                flags: CompileFlags::default(),
            }],
        }
        .to_line()
    }

    #[test]
    fn second_compile_is_all_hits_and_byte_identical() {
        let dir = tmp("warm");
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let _g = metrics::scoped(reg);
        let s = server(&dir, 1);
        let (cold, _) = s.handle_line(&compile_line(1, "p", SRC));
        let (warm, _) = s.handle_line(&compile_line(1, "p", SRC));
        let parse = |l: &str| match Response::parse(l).unwrap() {
            Response::Compile { results, hits, misses, .. } => (results, hits, misses),
            other => panic!("{other:?}"),
        };
        let (cold_r, cold_h, cold_m) = parse(&cold);
        let (warm_r, warm_h, warm_m) = parse(&warm);
        assert_eq!((cold_h, cold_m), (0, 2), "f and main, both cold");
        assert_eq!((warm_h, warm_m), (2, 0), "both served from cache");
        // Identical payloads modulo the cache-source marker.
        let strip = |rs: Vec<ProgramResult>| {
            rs.into_iter()
                .map(|mut r| {
                    if let Ok(fs) = &mut r.outcome {
                        fs.iter_mut().for_each(|f| f.cached = false);
                    }
                    r
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(cold_r), strip(warm_r));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn functions_come_back_name_sorted() {
        let dir = tmp("sorted");
        let s = server(&dir, 1);
        let src = "int zz() { return 1; }\nint aa() { return 2; }\nint main() { return 0; }\n";
        let (line, _) = s.handle_line(&compile_line(3, "p", src));
        let Response::Compile { results, .. } = Response::parse(&line).unwrap() else {
            panic!()
        };
        let names: Vec<String> = results[0]
            .outcome
            .as_ref()
            .unwrap()
            .iter()
            .map(|f| f.function.clone())
            .collect();
        assert_eq!(names, ["aa", "main", "zz"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_program_fails_alone_and_batch_survives() {
        let dir = tmp("partial");
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let _g = metrics::scoped(reg.clone());
        let s = server(&dir, 1);
        let req = Request::Compile {
            id: 4,
            programs: vec![
                ProgramReq {
                    name: "bad".into(),
                    source: "int main( {".into(),
                    flags: CompileFlags::default(),
                },
                ProgramReq {
                    name: "good".into(),
                    source: "int main() { return 0; }\n".into(),
                    flags: CompileFlags::default(),
                },
            ],
        };
        let (line, shutdown) = s.handle_line(&req.to_line());
        assert!(!shutdown);
        let Response::Compile { results, misses, .. } = Response::parse(&line).unwrap() else {
            panic!()
        };
        assert!(results[0].outcome.is_err());
        assert!(results[1].outcome.is_ok());
        assert_eq!(misses, 1);
        assert_eq!(reg.snapshot().counter("serve.errors"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ndjson_session_stats_and_shutdown() {
        let dir = tmp("session");
        let reg = Arc::new(hli_obs::MetricsRegistry::new());
        let _g = metrics::scoped(reg);
        let s = server(&dir, 1);
        let input = format!(
            "{}\n\nnot json\n{}\n{}\n{}\n",
            compile_line(1, "p", "int main() { return 0; }\n"),
            Request::Stats { id: 2 }.to_line(),
            Request::Shutdown { id: 3 }.to_line(),
            compile_line(9, "after", "int main() { return 9; }\n"),
        );
        let mut out = Vec::new();
        let shutdown = s.run(io::Cursor::new(input), &mut out).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4, "blank line skipped, post-shutdown line unread");
        assert!(matches!(
            Response::parse(lines[0]).unwrap(),
            Response::Compile { id: 1, .. }
        ));
        let Response::Error { id, .. } = Response::parse(lines[1]).unwrap() else {
            panic!()
        };
        assert_eq!(id, None);
        let Response::Stats { id: 2, stats } = Response::parse(lines[2]).unwrap() else {
            panic!()
        };
        assert_eq!(stats["serve.batches"], 1);
        assert_eq!(stats["serve.errors"], 1);
        assert!(stats.keys().all(|k| k.starts_with("serve.")));
        assert!(matches!(
            Response::parse(lines[3]).unwrap(),
            Response::Shutdown { id: 3 }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unix_socket_roundtrip() {
        let dir = tmp("unix");
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("hlicc.sock");
        let s = Arc::new(server(&dir.join("cache"), 1));
        let s2 = s.clone();
        let sock2 = sock.clone();
        let daemon = std::thread::spawn(move || s2.run_unix(&sock2).unwrap());
        // Wait for the socket to appear, then talk to it.
        let mut stream = loop {
            match std::os::unix::net::UnixStream::connect(&sock) {
                Ok(st) => break st,
                Err(_) => std::thread::yield_now(),
            }
        };
        writeln!(stream, "{}", compile_line(1, "p", "int main() { return 0; }\n")).unwrap();
        writeln!(stream, "{}", Request::Shutdown { id: 2 }.to_line()).unwrap();
        let mut lines = io::BufReader::new(stream).lines();
        let first = lines.next().unwrap().unwrap();
        assert!(matches!(
            Response::parse(&first).unwrap(),
            Response::Compile { id: 1, .. }
        ));
        let second = lines.next().unwrap().unwrap();
        assert!(matches!(
            Response::parse(&second).unwrap(),
            Response::Shutdown { id: 2 }
        ));
        daemon.join().unwrap();
        assert!(!sock.exists(), "socket removed on orderly shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
