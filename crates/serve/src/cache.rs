//! The persistent content-addressed object store — layout, object
//! schema, eviction and quarantine rules normative in docs/SERVE.md
//! ("Cache layout", "Eviction", "Quarantine and trust").
//!
//! One JSON object per function per key under
//! `<root>/v1/objects/<2hex>/<16hex>.json`, written atomically
//! (tmp + rename). Each object carries the scheduled output (dump +
//! hash + query stats) *and* the function's full observability shard,
//! so a cache hit can be [`hli_obs::commit`]ted exactly like a fresh
//! capture — that is what makes cached and cold `--stats json` /
//! provenance output byte-identical.
//!
//! Objects that fail to parse or to self-identify are deleted on sight
//! and treated as misses (`serve.cache.quarantined`): the same
//! never-trust-never-abort stance as the compiler's `vet_unit` boundary.

use crate::key::CacheKey;
use hli_backend::ddg::QueryStats;
use hli_obs::json::{self, escape_into, Json};
use hli_obs::metrics::HistSnapshot;
use hli_obs::{DecisionRecord, MetricsSnapshot, ObsShard};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// The serializable part of an [`ObsShard`]: everything a compile
/// capture produces (captures never trace, so spans are always empty).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardData {
    /// Query/span ids the capture stamped (renumbered at commit).
    pub ids_used: u64,
    /// The capture's metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Decision records with shard-local ids.
    pub records: Vec<DecisionRecord>,
}

impl ShardData {
    /// Copy the serializable fields out of a captured shard.
    pub fn from_shard(shard: &ObsShard) -> ShardData {
        ShardData {
            ids_used: shard.ids_used,
            metrics: shard.metrics.clone(),
            records: shard.records.clone(),
        }
    }

    /// Reconstruct a committable shard — replaying this through
    /// [`hli_obs::commit`] is observably identical to committing the
    /// original capture.
    pub fn into_shard(self) -> ObsShard {
        ObsShard {
            metrics: self.metrics,
            records: self.records,
            ids_used: self.ids_used,
            spans: Vec::new(),
            seq_used: 0,
        }
    }
}

/// One cached compile answer (the on-disk object schema in SERVE.md).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedObject {
    pub key: CacheKey,
    pub function: String,
    /// FNV-1a 64 of `dump`.
    pub sched_hash: u64,
    /// The scheduled RTL text.
    pub dump: String,
    pub stats: QueryStats,
    pub shard: ShardData,
}

impl CachedObject {
    /// Canonical single-line JSON rendering (the file contents, plus a
    /// trailing newline when written).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"schema_version\": {}, \"serve_version\": {}, \"key\": \"{}\", \"function\": ",
            hli_obs::SCHEMA_VERSION,
            crate::SERVE_VERSION,
            self.key.hex()
        );
        escape_into(&mut s, &self.function);
        let _ = write!(s, ", \"sched_hash\": \"{:016x}\", \"stats\": ", self.sched_hash);
        let q = &self.stats;
        let _ = write!(
            s,
            "{{\"total_tests\": {}, \"gcc_yes\": {}, \"hli_yes\": {}, \
             \"combined_yes\": {}, \"call_queries\": {}}}",
            q.total_tests, q.gcc_yes, q.hli_yes, q.combined_yes, q.call_queries
        );
        s.push_str(", \"dump\": ");
        escape_into(&mut s, &self.dump);
        let _ = write!(
            s,
            ", \"shard\": {{\"ids_used\": {}, \"counters\": {{",
            self.shard.ids_used
        );
        for (i, (k, v)) in self.shard.metrics.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            escape_into(&mut s, k);
            let _ = write!(s, ": {v}");
        }
        s.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.shard.metrics.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            escape_into(&mut s, k);
            let _ = write!(s, ": {v}");
        }
        s.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.shard.metrics.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            escape_into(&mut s, k);
            let _ = write!(
                s,
                ": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.max
            );
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{lo}, {n}]");
            }
            s.push_str("]}");
        }
        s.push_str("}, \"records\": [");
        for (i, r) in self.shard.records.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            escape_into(&mut s, &r.to_json_line());
        }
        s.push_str("]}}");
        s
    }

    /// Parse an object file's contents; `Err` means the object is
    /// corrupt or from a different generation and must be quarantined.
    pub fn parse(text: &str) -> Result<CachedObject, String> {
        let v = json::parse(text.trim_end())?;
        let num = |j: &Json, what: &str| -> Result<u64, String> {
            j.as_num()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("bad {what}"))
        };
        let field_num = |k: &str| num(v.get(k).ok_or_else(|| format!("missing `{k}`"))?, k);
        if field_num("schema_version")? != hli_obs::SCHEMA_VERSION {
            return Err("schema_version mismatch".into());
        }
        if field_num("serve_version")? != crate::SERVE_VERSION {
            return Err("serve_version mismatch".into());
        }
        let hex_field = |k: &str| -> Result<u64, String> {
            let s = v.get(k).and_then(Json::as_str).ok_or_else(|| format!("missing `{k}`"))?;
            CacheKey::from_hex(s).map(|c| c.0).ok_or_else(|| format!("bad hex in `{k}`"))
        };
        let key = CacheKey(hex_field("key")?);
        let function = v
            .get("function")
            .and_then(Json::as_str)
            .ok_or("missing `function`")?
            .to_string();
        let stats_v = v.get("stats").ok_or("missing `stats`")?;
        let sf = |k: &str| num(stats_v.get(k).ok_or_else(|| format!("missing stats.{k}"))?, k);
        let stats = QueryStats {
            total_tests: sf("total_tests")?,
            gcc_yes: sf("gcc_yes")?,
            hli_yes: sf("hli_yes")?,
            combined_yes: sf("combined_yes")?,
            call_queries: sf("call_queries")?,
        };
        let dump = v.get("dump").and_then(Json::as_str).ok_or("missing `dump`")?.to_string();
        let shard_v = v.get("shard").ok_or("missing `shard`")?;
        let mut metrics = MetricsSnapshot::default();
        if let Some(Json::Obj(m)) = shard_v.get("counters") {
            for (k, val) in m {
                metrics.counters.insert(k.clone(), num(val, "counter")?);
            }
        }
        if let Some(Json::Obj(m)) = shard_v.get("gauges") {
            for (k, val) in m {
                let n = val.as_num().filter(|n| n.fract() == 0.0).ok_or("bad gauge")?;
                metrics.gauges.insert(k.clone(), n as i64);
            }
        }
        if let Some(Json::Obj(m)) = shard_v.get("histograms") {
            for (k, val) in m {
                let hf = |f: &str| num(val.get(f).ok_or_else(|| format!("missing hist.{f}"))?, f);
                let buckets = val
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or("missing hist.buckets")?
                    .iter()
                    .map(|b| {
                        let pair = b.as_arr().filter(|p| p.len() == 2).ok_or("bad bucket")?;
                        Ok((num(&pair[0], "bucket lo")?, num(&pair[1], "bucket n")?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                metrics.histograms.insert(
                    k.clone(),
                    HistSnapshot {
                        count: hf("count")?,
                        sum: hf("sum")?,
                        max: hf("max")?,
                        buckets,
                    },
                );
            }
        }
        let records = shard_v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing `shard.records`")?
            .iter()
            .map(|r| {
                let line = r.as_str().ok_or("record must be a string")?;
                DecisionRecord::parse_line(line)
            })
            .collect::<Result<Vec<_>, String>>()?;
        let shard = ShardData {
            ids_used: num(shard_v.get("ids_used").ok_or("missing `shard.ids_used`")?, "ids_used")?,
            metrics,
            records,
        };
        Ok(CachedObject {
            key,
            function,
            sched_hash: hex_field("sched_hash")?,
            dump,
            stats,
            shard,
        })
    }
}

/// The on-disk store with in-process LRU accounting.
///
/// Recency is tracked in memory only (objects found at startup are
/// seeded least-recent-first in name order — deterministic, if
/// arbitrary); eviction deletes whole object files until the byte
/// budget fits. Counters: `serve.cache.{hits,misses,evictions,
/// quarantined}` and the `serve.cache.bytes` gauge.
#[derive(Debug)]
pub struct DiskCache {
    objects_dir: PathBuf,
    /// 0 = unlimited.
    max_bytes: u64,
    sizes: HashMap<CacheKey, u64>,
    /// `key -> last-touched tick`; min tick is the eviction victim.
    last_used: HashMap<CacheKey, u64>,
    tick: u64,
    bytes: u64,
}

impl DiskCache {
    /// Open (creating if needed) the store under `root`.
    pub fn open(root: &Path, max_bytes: u64) -> io::Result<DiskCache> {
        let objects_dir = root.join("v1").join("objects");
        std::fs::create_dir_all(&objects_dir)?;
        let mut names: BTreeMap<String, u64> = BTreeMap::new();
        for shard_dir in std::fs::read_dir(&objects_dir)? {
            let shard_dir = shard_dir?;
            if !shard_dir.file_type()?.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(shard_dir.path())? {
                let f = f?;
                let name = f.file_name().to_string_lossy().into_owned();
                if let Some(stem) = name.strip_suffix(".json") {
                    if CacheKey::from_hex(stem).is_some() {
                        names.insert(stem.to_string(), f.metadata()?.len());
                    }
                }
            }
        }
        let mut cache = DiskCache {
            objects_dir,
            max_bytes,
            sizes: HashMap::new(),
            last_used: HashMap::new(),
            tick: 0,
            bytes: 0,
        };
        // BTreeMap iteration = name order: deterministic startup recency.
        for (stem, len) in names {
            let key = CacheKey::from_hex(&stem).unwrap();
            cache.sizes.insert(key, len);
            cache.last_used.insert(key, cache.tick);
            cache.tick += 1;
            cache.bytes += len;
        }
        cache.stamp_bytes();
        Ok(cache)
    }

    fn path_of(&self, key: CacheKey) -> PathBuf {
        let hex = key.hex();
        self.objects_dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    fn stamp_bytes(&self) {
        hli_obs::metrics::cur().gauge("serve.cache.bytes").set(self.bytes as i64);
    }

    /// Object bytes currently on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of objects resident.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    fn forget(&mut self, key: CacheKey) {
        if let Some(len) = self.sizes.remove(&key) {
            self.bytes -= len;
        }
        self.last_used.remove(&key);
        let _ = std::fs::remove_file(self.path_of(key));
    }

    /// Look `key` up. `function` is the caller's expected unit name; an
    /// object that fails to parse, self-identify, or name that function
    /// is quarantined (deleted) and reported as a miss.
    pub fn get(&mut self, key: CacheKey, function: &str) -> Option<CachedObject> {
        let reg = hli_obs::metrics::cur();
        if !self.sizes.contains_key(&key) {
            reg.counter("serve.cache.misses").inc();
            return None;
        }
        let text = match std::fs::read_to_string(self.path_of(key)) {
            Ok(t) => t,
            Err(_) => {
                reg.counter("serve.cache.quarantined").inc();
                reg.counter("serve.cache.misses").inc();
                self.forget(key);
                self.stamp_bytes();
                return None;
            }
        };
        match CachedObject::parse(&text) {
            Ok(obj) if obj.key == key && obj.function == function => {
                self.tick += 1;
                self.last_used.insert(key, self.tick);
                reg.counter("serve.cache.hits").inc();
                Some(obj)
            }
            _ => {
                reg.counter("serve.cache.quarantined").inc();
                reg.counter("serve.cache.misses").inc();
                self.forget(key);
                self.stamp_bytes();
                None
            }
        }
    }

    /// Store `obj`, atomically, then evict least-recently-used objects
    /// (never the one just written) until the byte budget fits.
    pub fn put(&mut self, obj: &CachedObject) -> io::Result<()> {
        let key = obj.key;
        let path = self.path_of(key);
        std::fs::create_dir_all(path.parent().unwrap())?;
        let mut body = obj.to_json();
        body.push('\n');
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &body)?;
        std::fs::rename(&tmp, &path)?;
        if let Some(old) = self.sizes.insert(key, body.len() as u64) {
            self.bytes -= old;
        }
        self.bytes += body.len() as u64;
        self.tick += 1;
        self.last_used.insert(key, self.tick);
        if self.max_bytes > 0 {
            let reg = hli_obs::metrics::cur();
            while self.bytes > self.max_bytes && self.sizes.len() > 1 {
                let victim = self
                    .last_used
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, t)| **t)
                    .map(|(k, _)| *k);
                match victim {
                    Some(v) => {
                        self.forget(v);
                        reg.counter("serve.cache.evictions").inc();
                    }
                    None => break,
                }
            }
        }
        self.stamp_bytes();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_obs::provenance::QueryRef;
    use hli_obs::Verdict;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hli-serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn obj(key: u64, fill: usize) -> CachedObject {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("backend.ddg.tests".into(), 4);
        metrics.gauges.insert("backend.sched.depth".into(), -2);
        metrics.histograms.insert(
            "backend.ddg.block_size".into(),
            HistSnapshot { count: 2, sum: 6, max: 4, buckets: vec![(2, 1), (4, 1)] },
        );
        CachedObject {
            key: CacheKey(key),
            function: "f0".into(),
            sched_hash: 0xdead_beef,
            dump: format!("func f0:\n{}", "  1 @1 nop\n".repeat(fill.max(1))),
            stats: QueryStats {
                total_tests: 3,
                gcc_yes: 2,
                hli_yes: 1,
                combined_yes: 1,
                call_queries: 0,
            },
            shard: ShardData {
                ids_used: 2,
                metrics,
                records: vec![DecisionRecord {
                    pass: "sched.pair".into(),
                    function: "f0".into(),
                    region_id: Some(1),
                    order: 3,
                    span: 1,
                    est_cycles: 2,
                    hli_queries: vec![QueryRef(2)],
                    verdict: Verdict::Blocked { reason: "may\nalias".into() },
                }],
            },
        }
    }

    #[test]
    fn object_json_roundtrips() {
        let o = obj(0x0123_4567_89ab_cdef, 1);
        let text = o.to_json();
        assert_eq!(CachedObject::parse(&text).unwrap(), o, "{text}");
        // Shard reconstruction is lossless.
        let shard = o.shard.clone().into_shard();
        assert_eq!(ShardData::from_shard(&shard), o.shard);
    }

    #[test]
    fn parse_rejects_foreign_generations_and_garbage() {
        let good = obj(1, 1).to_json();
        assert!(CachedObject::parse(
            &good.replace("\"serve_version\": 1", "\"serve_version\": 99")
        )
        .is_err());
        assert!(CachedObject::parse(&good.replace(
            &format!("\"schema_version\": {}", hli_obs::SCHEMA_VERSION),
            "\"schema_version\": 0"
        ))
        .is_err());
        assert!(CachedObject::parse("not json").is_err());
        assert!(CachedObject::parse("{}").is_err());
    }

    #[test]
    fn put_get_roundtrip_and_persistence() {
        let root = tmp("roundtrip");
        let o = obj(42, 1);
        {
            let mut c = DiskCache::open(&root, 0).unwrap();
            assert!(c.get(o.key, "f0").is_none(), "empty cache misses");
            c.put(&o).unwrap();
            assert_eq!(c.get(o.key, "f0").unwrap(), o);
        }
        // A fresh open (daemon restart) still serves the object.
        let mut c = DiskCache::open(&root, 0).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(o.key, "f0").unwrap(), o);
        // Wrong expected function ⇒ quarantine, not a wrong answer.
        assert!(c.get(o.key, "other").is_none());
        assert_eq!(c.len(), 0, "mismatched object was deleted");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_objects_are_quarantined() {
        let root = tmp("quarantine");
        let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let _g = hli_obs::metrics::scoped(reg.clone());
        let o = obj(7, 1);
        let mut c = DiskCache::open(&root, 0).unwrap();
        c.put(&o).unwrap();
        // Truncate the object file behind the cache's back.
        let path = root.join("v1").join("objects").join(&o.key.hex()[..2]);
        let file = path.join(format!("{}.json", o.key.hex()));
        std::fs::write(&file, "{\"schema_version\": 2").unwrap();
        assert!(c.get(o.key, "f0").is_none());
        assert!(!file.exists(), "corrupt object deleted");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.cache.quarantined"), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let root = tmp("evict");
        let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
        let _g = hli_obs::metrics::scoped(reg.clone());
        let a = obj(1, 8);
        let one_size = (a.to_json().len() + 1) as u64;
        // Budget for about two objects of this shape.
        let mut c = DiskCache::open(&root, 2 * one_size + one_size / 2).unwrap();
        c.put(&obj(1, 8)).unwrap();
        c.put(&obj(2, 8)).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(CacheKey(1), "f0").is_some());
        c.put(&obj(3, 8)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get(CacheKey(2), "f0").is_none(), "LRU object evicted");
        assert!(c.get(CacheKey(1), "f0").is_some());
        assert!(c.get(CacheKey(3), "f0").is_some());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.cache.evictions"), 1);
        assert!(snap.gauges["serve.cache.bytes"] as u64 <= 2 * one_size + one_size / 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
