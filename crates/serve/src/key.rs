//! Content-addressed cache keys — the recipe documented in
//! docs/SERVE.md ("Cache-key recipe").
//!
//! A key commits to every compile-relevant input of one function's trip
//! through the back-end: the lowered pre-schedule RTL body, the
//! function's HLI unit (canonical serialized bytes *plus* its transient
//! maintenance generation), the machine model, the dependence mode, and
//! both artifact versions. Domain-separated FNV-1a 64; 16 lowercase hex
//! digits. The pinned-hash test at the bottom freezes the recipe — any
//! byte-level drift (a reordered component, a changed separator) fails
//! there rather than silently orphaning every deployed cache.

use crate::proto::CompileFlags;
use hli_core::image::EntryRef;
use hli_core::serialize::{encode_entry, SerializeOpts};

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Streaming FNV-1a 64 with the domain separators docs/SERVE.md fixes.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// One labelled component: `label NUL payload NUL`.
    pub fn component(&mut self, label: &str, payload: &[u8]) -> &mut Self {
        self.write(label.as_bytes()).write(&[0]).write(payload).write(&[0])
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Hash a whole byte string in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// A function's content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

impl CacheKey {
    /// The canonical 16-lowercase-hex-digit rendering used on the wire
    /// and as the object file name.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the canonical rendering back (16 hex digits exactly).
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

/// The serialized-bytes-plus-generation pair that forms the key's HLI
/// component. Views are materialized first (the issue's "stable content
/// hashing over `Tables`/`HliEntryView`"): an owned entry and a view of
/// the same unit hash identically, because `include_names: false`
/// serialization is canonical and a view's generation is 0 by contract.
pub fn hli_component(entry: &EntryRef<'_>) -> (Vec<u8>, u64) {
    const OPTS: SerializeOpts = SerializeOpts { include_names: false };
    let bytes = match entry {
        EntryRef::Owned(e) => encode_entry(e, OPTS),
        EntryRef::View(_) => encode_entry(&entry.materialize(), OPTS),
    };
    (bytes, entry.generation())
}

/// Derive one function's cache key. `body_dump` is the
/// `hli_backend::rtl::dump_func` text of the *lowered, pre-schedule*
/// function; `hli` is its unit when one exists. The byte layout is
/// normative — see docs/SERVE.md ("Cache-key recipe").
pub fn function_key(body_dump: &str, hli: Option<&EntryRef<'_>>, flags: &CompileFlags) -> CacheKey {
    let mut h = Fnv::new();
    h.write(format!("hlicc-serve/{}\0", crate::SERVE_VERSION).as_bytes());
    h.write(format!("schema={}\0", hli_obs::SCHEMA_VERSION).as_bytes());
    h.component("body", body_dump.as_bytes());
    match hli {
        Some(entry) => {
            let (bytes, generation) = hli_component(entry);
            let mut payload = bytes;
            payload.push(0);
            payload.extend_from_slice(format!("gen={generation}").as_bytes());
            h.component("hli", &payload);
        }
        None => {
            h.component("hli", b"absent");
        }
    }
    h.component("machine", flags.machine.canonical().as_bytes());
    h.component("mode", flags.mode.canonical().as_bytes());
    CacheKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Machine, Mode};
    use hli_backend::lower::lower_program;
    use hli_backend::rtl::dump_func;
    use hli_core::HliEntry;
    use hli_frontend::generate_hli;
    use hli_lang::compile_to_ast;

    const SRC: &str = "int a[16]; int b[16];\n\
        int f(int *p, int *q, int n) {\n\
            int i;\n\
            for (i = 0; i < n; i++) a[i] = b[i] + p[i] * q[0];\n\
            return a[0];\n\
        }\n\
        int main() { return f(a, b, 8); }\n";

    fn parts() -> (String, HliEntry) {
        let (p, s) = compile_to_ast(SRC).unwrap();
        let hli = generate_hli(&p, &s);
        let prog = lower_program(&p, &s);
        let f = prog.func("f").unwrap();
        (dump_func(f), hli.entry("f").unwrap().clone())
    }

    fn key_of(dump: &str, entry: &HliEntry, flags: &CompileFlags) -> CacheKey {
        function_key(dump, Some(&EntryRef::Owned(entry)), flags)
    }

    #[test]
    fn pinned_hash_regression() {
        // The recipe is normative (docs/SERVE.md): the same input must
        // produce this exact key on every platform and every run. If a
        // deliberate recipe change lands, bump SERVE_VERSION and repin.
        let (dump, entry) = parts();
        let k = key_of(&dump, &entry, &CompileFlags::default());
        assert_eq!(k.hex(), "a0e5e8ce8d4d3064", "cache-key recipe drifted");
    }

    #[test]
    fn each_component_independently_changes_the_key() {
        let (dump, entry) = parts();
        let base = key_of(&dump, &entry, &CompileFlags::default());

        // Body edit: any change to the lowered RTL text.
        let edited = dump.replacen("func f", "func f ", 1);
        assert_ne!(key_of(&edited, &entry, &CompileFlags::default()), base, "body");

        // HLI table content: a maintenance-shaped mutation of the unit.
        let mut grown = entry.clone();
        grown.regions[0].scope.1 += 1;
        assert_ne!(key_of(&dump, &grown, &CompileFlags::default()), base, "hli bytes");

        // HLI generation bump alone (bytes unchanged — generation is not
        // serialized) must still invalidate.
        let mut bumped = entry.clone();
        bumped.bump_generation();
        assert_ne!(key_of(&dump, &bumped, &CompileFlags::default()), base, "generation");

        // Machine model.
        let r10k = CompileFlags { machine: Machine::R10000, ..Default::default() };
        assert_ne!(key_of(&dump, &entry, &r10k), base, "machine");

        // Dependence mode.
        let gcc = CompileFlags { mode: Mode::GccOnly, ..Default::default() };
        assert_ne!(key_of(&dump, &entry, &gcc), base, "mode");

        // Unit absence.
        assert_ne!(function_key(&dump, None, &CompileFlags::default()), base, "absent");

        // The non-key flag: `dump` must NOT perturb the key.
        let with_dump = CompileFlags { dump: true, ..Default::default() };
        assert_eq!(
            key_of(&dump, &entry, &with_dump),
            base,
            "dump flag is not a key component"
        );
    }

    #[test]
    fn key_is_stable_across_repeated_derivations() {
        let (dump, entry) = parts();
        let a = key_of(&dump, &entry, &CompileFlags::default());
        let b = key_of(&dump, &entry, &CompileFlags::default());
        assert_eq!(a, b);
    }

    #[test]
    fn hex_roundtrip() {
        let k = CacheKey(0x0123_4567_89ab_cdef);
        assert_eq!(k.hex(), "0123456789abcdef");
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("123"), None);
        assert_eq!(CacheKey::from_hex("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
