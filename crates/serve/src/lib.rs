//! # hli-serve — the `hlicc serve` compile daemon
//!
//! A long-lived batched compile service over the same front-end → HLI →
//! back-end pipeline the one-shot `hlicc` binary drives, plus a
//! persistent content-addressed cache so an edit-compile loop only pays
//! for the functions that actually changed. The paper's integration
//! thesis is that high-level information survives the front-end/back-end
//! boundary as an *artifact*; this crate leans on exactly that property:
//! because a function's compile inputs (lowered body, HLI unit bytes +
//! generation, machine model, dependence mode) are all serializable, a
//! compile answer is addressable by their hash.
//!
//! **The contract lives in `docs/SERVE.md`** — wire framing, request and
//! response schemas, the cache-key recipe, the on-disk object layout,
//! eviction, quarantine, and the determinism guarantees. The modules here
//! implement it and the tests pin them to it:
//!
//! * [`proto`] — NDJSON request/response types and canonical codecs;
//! * [`key`] — domain-separated FNV-1a 64 cache keys (pinned-hash test);
//! * [`cache`] — the `<root>/v1/objects/…` store: atomic writes, LRU
//!   eviction, quarantine-on-corruption;
//! * [`daemon`] — [`Server`]: batch handling, pool fan-out of cache
//!   misses, stable-order shard commits that make cached and cold
//!   output byte-identical.
//!
//! ## Determinism
//!
//! Every cache miss is compiled under an observability capture
//! ([`hli_obs::capture_cfg`]) with provenance forced on, and the whole
//! shard — counters, gauges, histograms, decision records, id count — is
//! stored in the cache object. A hit replays the stored shard through
//! [`hli_obs::commit`] in the same stable order a cold run would have
//! committed its capture, so `--stats json` snapshots and provenance
//! JSONL are byte-identical between a cold and a warm run (`serve.*`
//! metrics excepted — they *describe* the cache) and across `--jobs`
//! values (`serve.*` included).

pub mod cache;
pub mod daemon;
pub mod key;
pub mod proto;

pub use cache::{CachedObject, DiskCache, ShardData};
pub use daemon::{ServeConfig, Server};
pub use key::{fnv1a, function_key, CacheKey, Fnv};
pub use proto::{
    CompileFlags, FuncResult, Machine, Mode, ProgramReq, ProgramResult, Request, Response,
};

/// Version of the serve wire protocol *and* the cache object schema
/// *and* the cache-key recipe (all three move together — the key commits
/// to this constant, so bumping it orphans every deployed cache object
/// by construction rather than by scan). Echoed as `serve_version` on
/// every response line and in every cache object.
pub const SERVE_VERSION: u64 = 1;
