//! Pins docs/SERVE.md to the implementation: every ```json example line
//! in the doc must round-trip byte-for-byte through the wire codecs, and
//! the documented compile/shutdown exchanges must be answered *exactly*
//! as printed by a live server. The doc is the contract; this test is
//! what stops the contract and the code from drifting apart.

use hli_serve::{Request, Response, ServeConfig, Server};
use std::path::PathBuf;

const DOC: &str = include_str!("../../../docs/SERVE.md");

/// The doc's ```json fences, in order: compile request, compile
/// response, stats request, stats response, shutdown request, shutdown
/// response, error response.
fn json_blocks() -> Vec<String> {
    let mut blocks = Vec::new();
    let mut cur: Option<String> = None;
    for line in DOC.lines() {
        match (&mut cur, line.trim_end()) {
            (None, "```json") => cur = Some(String::new()),
            (Some(b), "```") => {
                blocks.push(b.trim_end().to_string());
                cur = None;
            }
            (Some(b), l) => {
                b.push_str(l);
                b.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(cur.is_none(), "unterminated ```json fence in docs/SERVE.md");
    blocks
}

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hli-serve-docpin-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn every_documented_example_line_reemits_byte_for_byte() {
    let blocks = json_blocks();
    assert_eq!(
        blocks.len(),
        7,
        "docs/SERVE.md example inventory changed — update docpin.rs"
    );
    for (i, is_request) in [(0, true), (2, true), (4, true)].iter().map(|&(i, r)| (i, r)) {
        let _ = is_request;
        let line = &blocks[i];
        let req = Request::parse(line).unwrap_or_else(|e| panic!("doc block {i}: {e}\n{line}"));
        assert_eq!(req.to_line(), *line, "doc request block {i} is not canonical");
    }
    for i in [1, 3, 5, 6] {
        let line = &blocks[i];
        let resp = Response::parse(line).unwrap_or_else(|e| panic!("doc block {i}: {e}\n{line}"));
        assert_eq!(resp.to_line(), *line, "doc response block {i} is not canonical");
    }
}

#[test]
fn documented_compile_exchange_matches_a_live_server() {
    let blocks = json_blocks();
    let dir = tmp("compile");
    let reg = std::sync::Arc::new(hli_obs::MetricsRegistry::new());
    let _g = hli_obs::metrics::scoped(reg);
    let server =
        Server::new(ServeConfig { cache_dir: dir.clone(), cache_max_bytes: 0, jobs: 1 }).unwrap();
    // Cold: the doc's compile request must be answered with exactly the
    // doc's compile response — real key, real sched_hash, real stats.
    let (line, shutdown) = server.handle_line(&blocks[0]);
    assert!(!shutdown);
    assert_eq!(
        line, blocks[1],
        "docs/SERVE.md compile response drifted from the daemon"
    );
    // Warm: same request again is a pure cache hit with the same
    // key/hash/stats payload.
    let (warm, _) = server.handle_line(&blocks[0]);
    assert_eq!(
        warm,
        blocks[1]
            .replace("\"source\": \"cold\"", "\"source\": \"cache\"")
            .replace("{\"hits\": 0, \"misses\": 1}", "{\"hits\": 1, \"misses\": 0}"),
        "warm answer must differ only in source + hit counters"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn documented_shutdown_exchange_matches_a_live_server() {
    let blocks = json_blocks();
    let dir = tmp("shutdown");
    let server =
        Server::new(ServeConfig { cache_dir: dir.clone(), cache_max_bytes: 0, jobs: 1 }).unwrap();
    let (line, shutdown) = server.handle_line(&blocks[4]);
    assert!(shutdown, "shutdown request must stop the read loop");
    assert_eq!(line, blocks[5]);
    let _ = std::fs::remove_dir_all(&dir);
}
