//! # hli-suite — the benchmark workloads
//!
//! The paper evaluates on SPEC CINT92/CFP92/CINT95/CFP95 benchmarks plus
//! GNU `wc` (Table 1). SPEC sources are proprietary and target decades-old
//! toolchains, so this crate provides **synthetic analogs in MiniC**, one
//! per benchmark row, matched in *kind* rather than in function:
//!
//! * integer programs (`wc`, `espresso`, `eqntott`, `compress`) are
//!   branchy, carry few memory references per source line, and have small
//!   basic blocks — the paper's explanation for their modest speedups;
//! * floating-point programs (`doduc` … `apsi`) are loop nests over arrays
//!   and pointer parameters with dense memory traffic per line — where the
//!   paper's dependence-edge reductions (54% mean, >80% for the molecular-
//!   dynamics and stencil codes) come from.
//!
//! Every program is **closed** (no I/O): inputs are synthesized by an
//! in-program linear congruential generator, and the observable result is
//! `main`'s checksum return plus the global-memory checksum — the
//! differential oracle both execution paths must agree on.
//!
//! [`Scale`] parameterizes problem sizes so the harness can trade runtime
//! for fidelity (the default keeps each program's dynamic instruction count
//! in the hundreds of thousands, small enough for the machine models to
//! replay in milliseconds).

pub mod corpus;
mod programs_fp;
mod programs_int;
pub mod rng;

/// Problem-size knobs for the workload generator.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Base array extent.
    pub n: usize,
    /// Outer repetition count (timing signal vs. runtime).
    pub iters: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { n: 64, iters: 12 }
    }
}

impl Scale {
    /// A tiny scale for fast differential tests.
    pub fn tiny() -> Self {
        Scale { n: 12, iters: 2 }
    }
}

/// One benchmark row of Table 1 / Table 2.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Row name: a paper row (e.g. `034.mdljdp2`) or a generated-corpus
    /// id (`gen.s<seed>.p<index>`, see [`corpus`]).
    pub name: String,
    /// Suite label (paper suite, or `GEN` for generated programs).
    pub suite: String,
    pub is_fp: bool,
    /// MiniC source.
    pub source: String,
}

/// The full 14-program suite at the given scale, in the paper's Table 1/2
/// row order.
pub fn all(scale: Scale) -> Vec<Benchmark> {
    vec![
        bench("wc", "GNU", false, programs_int::wc(scale)),
        bench("008.espresso", "CINT92", false, programs_int::espresso(scale)),
        bench("023.eqntott", "CINT92", false, programs_int::eqntott(scale)),
        bench("129.compress", "CINT95", false, programs_int::compress(scale)),
        bench("015.doduc", "CFP92", true, programs_fp::doduc(scale)),
        bench("034.mdljdp2", "CFP92", true, programs_fp::mdljdp2(scale)),
        bench("048.ora", "CFP92", true, programs_fp::ora(scale)),
        bench("052.alvinn", "CFP92", true, programs_fp::alvinn(scale)),
        bench("077.mdljsp2", "CFP92", true, programs_fp::mdljsp2(scale)),
        bench("101.tomcatv", "CFP95", true, programs_fp::tomcatv(scale)),
        bench("102.swim", "CFP95", true, programs_fp::swim(scale)),
        bench("103.su2cor", "CFP95", true, programs_fp::su2cor(scale)),
        bench("107.mgrid", "CFP95", true, programs_fp::mgrid(scale)),
        bench("141.apsi", "CFP95", true, programs_fp::apsi(scale)),
    ]
}

/// Fetch one benchmark by (suffix of its) name.
pub fn by_name(name: &str, scale: Scale) -> Option<Benchmark> {
    all(scale).into_iter().find(|b| b.name == name || b.name.ends_with(name))
}

fn bench(name: &str, suite: &str, is_fp: bool, source: String) -> Benchmark {
    Benchmark {
        name: name.to_string(),
        suite: suite.to_string(),
        is_fp,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;
    use hli_lang::interp::run_program_limited;

    #[test]
    fn all_programs_compile() {
        for b in all(Scale::default()) {
            compile_to_ast(&b.source)
                .unwrap_or_else(|e| panic!("{} fails to compile: {e}", b.name));
        }
    }

    #[test]
    fn all_programs_run_at_tiny_scale() {
        for b in all(Scale::tiny()) {
            let (p, s) = compile_to_ast(&b.source).unwrap();
            let r = run_program_limited(&p, &s, 50_000_000)
                .unwrap_or_else(|e| panic!("{} faults: {e}", b.name));
            // Programs must do real work (non-trivial memory traffic).
            assert!(r.stats.loads + r.stats.stores > 50, "{} barely ran", b.name);
        }
    }

    #[test]
    fn results_are_deterministic() {
        for b in all(Scale::tiny()) {
            let (p, s) = compile_to_ast(&b.source).unwrap();
            let a = run_program_limited(&p, &s, 50_000_000).unwrap();
            let c = run_program_limited(&p, &s, 50_000_000).unwrap();
            assert_eq!(a.ret, c.ret, "{}", b.name);
            assert_eq!(a.global_checksum, c.global_checksum, "{}", b.name);
        }
    }

    #[test]
    fn fp_programs_outnumber_int_programs_like_the_paper() {
        let suite = all(Scale::default());
        let fp = suite.iter().filter(|b| b.is_fp).count();
        let int = suite.iter().filter(|b| !b.is_fp).count();
        assert_eq!((int, fp), (4, 10));
    }

    #[test]
    fn scaling_changes_work() {
        let small = by_name("102.swim", Scale::tiny()).unwrap();
        let big = by_name("102.swim", Scale::default()).unwrap();
        let run = |b: &Benchmark| {
            let (p, s) = compile_to_ast(&b.source).unwrap();
            run_program_limited(&p, &s, 200_000_000).unwrap().stats.loads
        };
        assert!(run(&big) > run(&small) * 2);
    }

    #[test]
    fn lookup_by_suffix() {
        assert!(by_name("swim", Scale::tiny()).is_some());
        assert!(by_name("102.swim", Scale::tiny()).is_some());
        assert!(by_name("nonesuch", Scale::tiny()).is_none());
    }
}
