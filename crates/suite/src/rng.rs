//! Seeded xorshift64 PRNG — the suite's (and the test-suite's) source of
//! deterministic pseudo-randomness. Lives here instead of a registry
//! dependency because the build environment is offline; the generator is
//! Marsaglia's xorshift64, which is plenty for workload perturbation and
//! property-style test inputs (it is *not* cryptographic).

/// A deterministic xorshift64 stream.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor. A zero seed would lock the stream at zero, so
    /// it is remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform-ish draw in `[0, n)`; `n` must be non-zero.
    pub fn next_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Pick a reference into a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.next_range(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn range_and_choose_stay_in_bounds() {
        let mut r = XorShift64::new(7);
        let xs = [10, 20, 30];
        for _ in 0..200 {
            assert!(r.next_range(5) < 5);
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
