//! Integer benchmark analogs: branchy control flow, few memory references
//! per line, small basic blocks — the integer-side profile of Table 1/2.

use crate::Scale;

/// GNU `wc`: classify a synthesized character stream into line/word/char
/// counts. Dominated by a byte loop full of compare-and-branch with one
/// load per iteration (the paper's 0.12 tests/line profile).
pub fn wc(s: Scale) -> String {
    let n = s.n * 64;
    let iters = s.iters;
    format!(
        r#"int text[{n}];
int nl;
int nw;
int nc;
int seed = 99991;

int next_char() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed % 96;
}}

void make_text() {{
    int i;
    for (i = 0; i < {n}; i++) {{
        text[i] = next_char();
    }}
}}

void count(int *buf, int n) {{
    int i;
    int c;
    int in_word;
    in_word = 0;
    for (i = 0; i < n; i++) {{
        c = buf[i];
        nc++;
        if (c == 7) {{
            nl++;
        }}
        if (c < 24) {{
            in_word = 0;
        }} else {{
            if (!in_word) {{
                nw++;
            }}
            in_word = 1;
        }}
    }}
}}

int main() {{
    int r;
    nl = 0; nw = 0; nc = 0;
    make_text();
    for (r = 0; r < {iters}; r++) {{
        count(text, {n});
    }}
    return nl + nw * 7 + nc % 1000;
}}
"#
    )
}

/// 008.espresso: two-level logic minimization — bitwise cube operations
/// over covers, with data-dependent branches (containment and distance
/// tests) and sparse memory traffic.
pub fn espresso(s: Scale) -> String {
    let cubes = s.n * 2;
    let iters = s.iters;
    format!(
        r#"int cover_a[{cubes}];
int cover_b[{cubes}];
int cover_r[{cubes}];
int ncubes;
int seed = 12347;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_covers() {{
    int i;
    for (i = 0; i < {cubes}; i++) {{
        cover_a[i] = next() & 65535;
        cover_b[i] = next() & 65535;
        cover_r[i] = 0;
    }}
    ncubes = {cubes};
}}

int cube_distance(int x, int y) {{
    int d;
    int v;
    d = 0;
    v = x ^ y;
    while (v) {{
        d = d + (v & 1);
        v = v >> 1;
    }}
    return d;
}}

int contains(int x, int y) {{
    if ((x & y) == y) {{
        return 1;
    }}
    return 0;
}}

void sharp_pass(int *ca, int *cb, int *cr) {{
    int i;
    int j;
    int acc;
    for (i = 0; i < ncubes; i++) {{
        acc = ca[i];
        j = i & 15;
        while (j > 0) {{
            if (contains(acc, cb[j])) {{
                acc = acc & ~cb[j];
            }} else {{
                if (cube_distance(acc, cb[j]) < 3) {{
                    acc = acc | (cb[j] & 255);
                }}
            }}
            j--;
        }}
        cr[i] = acc;
    }}
}}

void lift_pass(int *ca, int *cb, int *cr, int n) {{
    int i;
    for (i = 1; i < n; i++) {{
        cr[i] = (cr[i] & 4095) | (ca[i] >> 4); cb[i] = cb[i] ^ (cr[i-1] & 15);
    }}
}}

int main() {{
    int r;
    int i;
    int sum;
    init_covers();
    for (r = 0; r < {iters}; r++) {{
        sharp_pass(cover_a, cover_b, cover_r);
        lift_pass(cover_a, cover_b, cover_r, ncubes);
    }}
    sum = 0;
    for (i = 0; i < ncubes; i++) {{
        sum = sum ^ cover_r[i];
    }}
    return sum & 32767;
}}
"#
    )
}

/// 023.eqntott: truth-table construction — the hot spot of the original is
/// `cmppt`, a comparison function called from quicksort. The analog sorts
/// term vectors with an insertion sort calling a comparison function.
pub fn eqntott(s: Scale) -> String {
    let terms = s.n * 2;
    let iters = s.iters;
    format!(
        r#"int table[{terms}];
int perm[{terms}];
int packed[{terms}];
int seed = 777;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void build_table() {{
    int i;
    for (i = 0; i < {terms}; i++) {{
        table[i] = next() & 4095;
        perm[i] = i;
    }}
}}

int cmppt(int *t, int a, int b) {{
    int x;
    int y;
    x = t[a];
    y = t[b];
    if (x < y) {{
        return -1;
    }}
    if (x > y) {{
        return 1;
    }}
    if (a < b) {{
        return -1;
    }}
    return 1;
}}

void sort_terms(int *pm, int *t) {{
    int i;
    int j;
    int key;
    for (i = 1; i < {terms}; i++) {{
        key = pm[i];
        j = i - 1;
        while (j >= 0 && cmppt(t, pm[j], key) > 0) {{
            pm[j + 1] = pm[j];
            j--;
        }}
        pm[j + 1] = key;
    }}
}}

void pack_terms(int *pm, int *t, int *out, int n) {{
    int i;
    for (i = 0; i < n - 1; i++) {{
        out[i] = pm[i] ^ (t[i] & 255); out[i] = out[i] + (pm[i+1] & 15);
    }}
}}

int check_sorted() {{
    int i;
    int bad;
    bad = 0;
    for (i = 1; i < {terms}; i++) {{
        if (table[perm[i - 1]] > table[perm[i]]) {{
            bad++;
        }}
    }}
    return bad;
}}

int main() {{
    int r;
    int h;
    h = 0;
    for (r = 0; r < {iters}; r++) {{
        seed = 777 + r;
        build_table();
        sort_terms(perm, table);
        pack_terms(perm, table, packed, {terms});
        h = h * 31 + table[perm[0]] + table[perm[{terms} - 1]] + check_sorted() + packed[3];
        h = h & 1048575;
    }}
    return h;
}}
"#
    )
}

/// 129.compress: LZW coding — hash-table probing with open addressing,
/// data-dependent control, modulo/mask arithmetic, modest memory traffic.
pub fn compress(s: Scale) -> String {
    let input = s.n * 24;
    let htab = 1 << 12;
    let iters = s.iters;
    format!(
        r#"int input[{input}];
int htab[{htab}];
int codetab[{htab}];
int free_ent;
int out_len;
int seed = 4242;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void make_input() {{
    int i;
    for (i = 0; i < {input}; i++) {{
        input[i] = next() & 63;
    }}
}}

void clear_tables() {{
    int i;
    for (i = 0; i < {htab}; i++) {{
        htab[i] = -1;
        codetab[i] = 0;
    }}
    free_ent = 257;
    out_len = 0;
}}

int do_compress(int *inp, int *ht, int *codes) {{
    int i;
    int ent;
    int c;
    int fcode;
    int h;
    int disp;
    int emitted;
    emitted = 0;
    ent = inp[0];
    for (i = 1; i < {input}; i++) {{
        c = inp[i];
        fcode = (c << 16) + ent;
        h = ((c << 4) ^ ent) & {hmask};
        if (ht[h] == fcode) {{
            ent = codes[h];
            continue;
        }}
        if (ht[h] >= 0) {{
            disp = {htab} - h;
            if (h == 0) {{
                disp = 1;
            }}
            do {{
                h = h - disp;
                if (h < 0) {{
                    h = h + {htab};
                }}
                if (ht[h] == fcode) {{
                    break;
                }}
            }} while (ht[h] >= 0);
            if (ht[h] == fcode) {{
                ent = codes[h];
                continue;
            }}
        }}
        out_len++;
        emitted = emitted + ent;
        if (free_ent < {htab}) {{
            codes[h] = free_ent;
            ht[h] = fcode;
            free_ent++;
        }}
        ent = c;
    }}
    return emitted;
}}

int main() {{
    int r;
    int acc;
    acc = 0;
    make_input();
    for (r = 0; r < {iters}; r++) {{
        clear_tables();
        acc = acc ^ do_compress(input, htab, codetab);
    }}
    return (acc + out_len + free_ent) & 1048575;
}}
"#,
        hmask = htab - 1
    )
}
