//! Floating-point benchmark analogs: loop nests over arrays and pointer
//! parameters, dense memory traffic per line — the CFP profile of the
//! paper's Tables 1/2.
//!
//! The per-benchmark shapes are chosen to reproduce the paper's *relative*
//! behaviour:
//!
//! * the molecular-dynamics pair (`mdljdp2`, `mdljsp2`) routes everything
//!   through pointer parameters with long division chains feeding stores —
//!   the GCC test loses completely (>80% edge reduction) and the freed
//!   loads matter to the R10000's load/store queue (the paper's 1.42×/1.59×);
//! * `tomcatv` is engineered as the cautionary row: huge edge reduction but
//!   a serial floating-point reduction chain, so scheduling freedom buys
//!   almost nothing (the paper: 93% reduction, 1.00×/1.01×);
//! * `mgrid`/`apsi` use distinct global arrays that GCC can already
//!   disambiguate by symbol, leaving only same-array pairs — the paper's
//!   small reductions (15%, 33%).

use crate::Scale;

/// 015.doduc: Monte-Carlo reactor kernels — many small routines of
/// straight-line double arithmetic called from nested loops.
pub fn doduc(s: Scale) -> String {
    let n = s.n;
    let iters = s.iters;
    format!(
        r#"double state[{n}][8];
double coeff[8];
double result[{n}];
int seed = 31415;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_state() {{
    int i;
    int j;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < 8; j++) {{
            state[i][j] = (next() & 255) * 0.0039 + 0.1;
        }}
    }}
    for (j = 0; j < 8; j++) {{
        coeff[j] = 0.3 + j * 0.07;
    }}
}}

double interp2(double a, double b, double t) {{
    return a + (b - a) * t;
}}

double cross_section(double e, double t) {{
    double u;
    double v;
    u = e * 0.7 + t * 0.3;
    v = 1.0 / (u + 0.5);
    return v * interp2(u, v, 0.25) + 0.01;
}}

void sweep(double *row, double *out, int idx) {{
    double acc;
    double sig;
    int j;
    acc = 0.0;
    for (j = 0; j < 8; j++) {{
        sig = cross_section(row[j], coeff[j]);
        acc = acc + sig * row[j] + coeff[j] * 0.5;
    }}
    out[idx] = acc;
}}

void relax_rows(double *a, double *b, int n) {{
    int j;
    for (j = 1; j < n - 1; j++) {{
        a[j] = a[j] * 0.9 + b[j] * 0.1; b[j] = b[j] + a[j-1] * 0.01 + a[j+1] * 0.01;
    }}
}}

int main() {{
    int r;
    int i;
    double total;
    init_state();
    for (r = 0; r < {iters}; r++) {{
        for (i = 0; i < {n}; i++) {{
            sweep(state[i], result, i);
        }}
        for (i = 0; i < {n}; i++) {{
            relax_rows(state[i], result, 8);
        }}
    }}
    total = 0.0;
    for (i = 0; i < {n}; i++) {{
        total = total + result[i];
    }}
    return total * 10.0;
}}
"#
    )
}

/// 034.mdljdp2: double-precision molecular dynamics — pairwise forces
/// through pointer parameters; division-fed stores followed by loads the
/// HLI can prove independent (the paper's biggest R10000 winner).
pub fn mdljdp2(s: Scale) -> String {
    let n = s.n;
    let iters = s.iters;
    format!(
        r#"double pos[{n}];
double vel[{n}];
double force[{n}];
double pot[{n}];
int seed = 2718;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_md() {{
    int i;
    for (i = 0; i < {n}; i++) {{
        pos[i] = (next() & 1023) * 0.001 + i * 1.2;
        vel[i] = 0.0;
        force[i] = 0.0;
        pot[i] = 0.0;
    }}
}}

void forces(double *x, double *f, double *p, int n) {{
    int i;
    double dx;
    double r2;
    double w;
    for (i = 1; i < n; i++) {{
        dx = x[i] - x[i-1];
        r2 = dx * dx + 0.01;
        w = 1.0 / (r2 * r2);
        f[i] = f[i] + w * dx; p[i] = p[i] + w * r2; dx = x[i] * 0.5;
        f[i-1] = f[i-1] - w * dx;
    }}
}}

void integrate(double *x, double *v, double *f, int n) {{
    int i;
    for (i = 0; i < n; i++) {{
        v[i] = v[i] + f[i] * 0.0005; x[i] = x[i] + v[i] * 0.01; f[i] = 0.0;
    }}
}}

int main() {{
    int r;
    int i;
    double e;
    init_md();
    for (r = 0; r < {iters}; r++) {{
        forces(pos, force, pot, {n});
        integrate(pos, vel, force, {n});
    }}
    e = 0.0;
    for (i = 0; i < {n}; i++) {{
        e = e + pos[i] * 0.001 + pot[i];
    }}
    return e;
}}
"#
    )
}

/// 077.mdljsp2: the single-precision twin — same dynamics shape with a
/// second interaction table, even more pointer traffic per line.
pub fn mdljsp2(s: Scale) -> String {
    let n = s.n;
    let iters = s.iters;
    format!(
        r#"double xs[{n}];
double vs[{n}];
double fs[{n}];
double side[{n}];
int seed = 1618;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_sp() {{
    int i;
    for (i = 0; i < {n}; i++) {{
        xs[i] = (next() & 511) * 0.002 + i;
        vs[i] = 0.001 * (i & 7);
        fs[i] = 0.0;
        side[i] = 1.0 + (i & 3) * 0.25;
    }}
}}

void pair_forces(double *x, double *f, double *tbl, int n) {{
    int i;
    double d;
    double q;
    double w;
    for (i = 2; i < n; i++) {{
        d = x[i] - x[i-2];
        q = d * d + 0.05;
        w = tbl[i] / q;
        f[i] = f[i] + w * d; f[i-2] = f[i-2] - w * d; d = tbl[i-1] * 0.5;
        f[i-1] = f[i-1] + d / q;
    }}
}}

void advance(double *x, double *v, double *f, double *tbl, int n) {{
    int i;
    for (i = 0; i < n; i++) {{
        v[i] = v[i] * 0.999 + f[i] * 0.001; x[i] = x[i] + v[i]; f[i] = tbl[i] * 0.0;
    }}
}}

int main() {{
    int r;
    int i;
    double h;
    init_sp();
    for (r = 0; r < {iters}; r++) {{
        pair_forces(xs, fs, side, {n});
        advance(xs, vs, fs, side, {n});
    }}
    h = 0.0;
    for (i = 0; i < {n}; i++) {{
        h = h + xs[i] * 0.01 + vs[i];
    }}
    return h;
}}
"#
    )
}

/// 048.ora: optical ray tracing — almost pure scalar double arithmetic
/// (surface intersections) with little array traffic, the low-query row.
pub fn ora(s: Scale) -> String {
    let rays = s.n * s.iters.max(1);
    format!(
        r#"double acc_x;
double acc_y;
double image[16];
double weight[16];
int seed = 55555;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

double refract(double dir, double nrm, double eta) {{
    double c;
    double k;
    c = dir * nrm;
    if (c < 0.0) {{
        c = -c;
    }}
    k = 1.0 - eta * eta * (1.0 - c * c);
    if (k < 0.0) {{
        return dir - 2.0 * c * nrm;
    }}
    return eta * dir + (eta * c - k * 0.5) * nrm;
}}

double trace_ray(double x, double y) {{
    double d;
    double t;
    int surf;
    d = x * 0.8 + y * 0.2;
    for (surf = 0; surf < 6; surf++) {{
        t = refract(d, 0.5 + surf * 0.1, 0.9);
        d = t * 0.95 + d * 0.05;
        if (d > 10.0) {{
            d = d - 10.0;
        }}
    }}
    return d;
}}

void collect(double *img, double *wgt, int n) {{
    int i;
    for (i = 1; i < n; i++) {{
        img[i] = img[i] * 0.75 + wgt[i] * 0.25; wgt[i] = wgt[i] + img[i-1] * 0.125;
    }}
}}

int main() {{
    int i;
    double rx;
    double ry;
    acc_x = 0.0;
    acc_y = 0.0;
    for (i = 0; i < {rays}; i++) {{
        rx = (next() & 255) * 0.004;
        ry = (next() & 255) * 0.004;
        acc_x = acc_x + trace_ray(rx, ry);
        acc_y = acc_y + trace_ray(ry, rx) * 0.5;
        image[i & 15] = image[i & 15] + acc_x * 0.001;
    }}
    collect(image, weight, 16);
    return acc_x + acc_y + image[3] + weight[7];
}}
"#
    )
}

/// 052.alvinn: neural-net training — matrix-vector products through
/// pointer parameters with accumulators (the tiny-code, dense-loop row).
pub fn alvinn(s: Scale) -> String {
    let inputs = s.n;
    let hidden = (s.n / 2).max(4);
    let iters = s.iters;
    format!(
        r#"double in_act[{inputs}];
double hid_act[{hidden}];
double weights[{hidden}][{inputs}];
double deltas[{hidden}];
int seed = 8088;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_net() {{
    int i;
    int j;
    for (i = 0; i < {inputs}; i++) {{
        in_act[i] = (next() & 127) * 0.007;
    }}
    for (j = 0; j < {hidden}; j++) {{
        for (i = 0; i < {inputs}; i++) {{
            weights[j][i] = (next() & 63) * 0.01 - 0.3;
        }}
    }}
}}

void forward(double *inp, double *hid, int ni, int nh) {{
    int i;
    int j;
    double sum;
    for (j = 0; j < nh; j++) {{
        sum = 0.0;
        for (i = 0; i < ni; i++) {{
            sum = sum + weights[j][i] * inp[i];
        }}
        hid[j] = sum / (1.0 + sum * sum);
    }}
}}

void backward(double *hid, double *dl, int nh) {{
    int j;
    for (j = 0; j < nh; j++) {{
        dl[j] = hid[j] * (1.0 - hid[j]) * 0.3; hid[j] = hid[j] + dl[j] * 0.1;
    }}
}}

int main() {{
    int r;
    int j;
    double out;
    init_net();
    for (r = 0; r < {iters}; r++) {{
        forward(in_act, hid_act, {inputs}, {hidden});
        backward(hid_act, deltas, {hidden});
    }}
    out = 0.0;
    for (j = 0; j < {hidden}; j++) {{
        out = out + hid_act[j];
    }}
    return out * 100.0;
}}
"#
    )
}

/// 101.tomcatv: mesh generation — the cautionary row: enormous dependence
/// reduction (the mesh arrays reach the kernels as pointer parameters with
/// linearized affine subscripts, exactly how f2c-style translation hands
/// Fortran arrays to GCC — the local test loses every query, the HLI wins
/// almost all) but a serial floating-point reduction chain per point, so
/// scheduling freedom barely moves execution time.
pub fn tomcatv(s: Scale) -> String {
    let n = s.n.min(48);
    let nn = n * n;
    let iters = s.iters;
    format!(
        r#"double mesh_x[{nn}];
double mesh_y[{nn}];
double res_x[{nn}];
double res_y[{nn}];
int seed = 10101;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_mesh() {{
    int i;
    for (i = 0; i < {nn}; i++) {{
        mesh_x[i] = (i / {n}) * 0.5 + (next() & 15) * 0.01;
        mesh_y[i] = (i % {n}) * 0.5 + (next() & 15) * 0.01;
        res_x[i] = 0.0;
        res_y[i] = 0.0;
    }}
}}

void residuals(double *x, double *y, double *rx, double *ry) {{
    int i;
    int j;
    double xx;
    double yx;
    double a;
    double b;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            xx = x[i*{n}+j+1] - x[i*{n}+j-1]; yx = y[i*{n}+j+1] - y[i*{n}+j-1];
            a = 0.25 * (xx * xx + yx * yx);
            b = a + x[(i+1)*{n}+j] * 0.125 + x[(i-1)*{n}+j] * 0.125;
            b = b * a + y[(i+1)*{n}+j] * 0.125;
            b = b * a + y[(i-1)*{n}+j] * 0.125;
            b = b * a + xx * yx;
            rx[i*{n}+j] = b * 0.5; ry[i*{n}+j] = b * 0.25 + yx;
        }}
    }}
}}

void relax(double *x, double *y, double *rx, double *ry) {{
    int i;
    int j;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            x[i*{n}+j] = x[i*{n}+j] + rx[i*{n}+j] * 0.3; y[i*{n}+j] = y[i*{n}+j] + ry[i*{n}+j] * 0.3;
        }}
    }}
}}

int main() {{
    int r;
    int i;
    double h;
    init_mesh();
    for (r = 0; r < {iters}; r++) {{
        residuals(mesh_x, mesh_y, res_x, res_y);
        relax(mesh_x, mesh_y, res_x, res_y);
    }}
    h = 0.0;
    for (i = 1; i < {n} - 1; i++) {{
        h = h + mesh_x[i*{n}+i] + mesh_y[i*{n}+{n} - 1 - i];
    }}
    return h;
}}
"#
    )
}

/// 102.swim: shallow-water equations — the classic three-field stencil
/// (U/V/P) with the paper's highest refs-per-line density.
pub fn swim(s: Scale) -> String {
    let n = s.n.min(48);
    let nn = n * n;
    let iters = s.iters;
    format!(
        r#"double u[{nn}];
double v[{nn}];
double p[{nn}];
double unew[{nn}];
double vnew[{nn}];
double pnew[{nn}];
int seed = 20202;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_fields() {{
    int i;
    for (i = 0; i < {nn}; i++) {{
        u[i] = (next() & 31) * 0.03;
        v[i] = (next() & 31) * 0.02;
        p[i] = 50.0 + (next() & 15) * 0.1;
        unew[i] = 0.0; vnew[i] = 0.0; pnew[i] = 0.0;
    }}
}}

void calc_uvp(double *cu, double *cv, double *cp, double *nu, double *nv, double *np) {{
    int i;
    int j;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            nu[i*{n}+j] = cu[i*{n}+j] + 0.1 * (cp[(i-1)*{n}+j] - cp[(i+1)*{n}+j]) + 0.05 * (cv[i*{n}+j-1] + cv[i*{n}+j+1]);
            nv[i*{n}+j] = cv[i*{n}+j] + 0.1 * (cp[i*{n}+j-1] - cp[i*{n}+j+1]) + 0.05 * (cu[(i-1)*{n}+j] + cu[(i+1)*{n}+j]);
            np[i*{n}+j] = cp[i*{n}+j] - 0.2 * (cu[(i+1)*{n}+j] - cu[(i-1)*{n}+j]) - 0.2 * (cv[i*{n}+j+1] - cv[i*{n}+j-1]);
        }}
    }}
}}

void copy_back(double *cu, double *cv, double *cp, double *nu, double *nv, double *np) {{
    int i;
    int j;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            cu[i*{n}+j] = nu[i*{n}+j]; cv[i*{n}+j] = nv[i*{n}+j]; cp[i*{n}+j] = np[i*{n}+j];
        }}
    }}
}}

int main() {{
    int r;
    int i;
    double check;
    init_fields();
    for (r = 0; r < {iters}; r++) {{
        calc_uvp(u, v, p, unew, vnew, pnew);
        copy_back(u, v, p, unew, vnew, pnew);
    }}
    check = 0.0;
    for (i = 0; i < {n}; i++) {{
        check = check + p[i*{n}+i] + u[i*{n}+{n} - 1 - i] * 10.0;
    }}
    return check;
}}
"#
    )
}

/// 103.su2cor: quark propagators — small complex-matrix algebra over
/// flattened lattices, mixing pointer-parameter kernels and direct arrays.
pub fn su2cor(s: Scale) -> String {
    let n = s.n;
    let iters = s.iters;
    format!(
        r#"double gauge_re[{n}][4];
double gauge_im[{n}][4];
double prop_re[{n}];
double prop_im[{n}];
int seed = 30303;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_lattice() {{
    int i;
    int mu;
    for (i = 0; i < {n}; i++) {{
        for (mu = 0; mu < 4; mu++) {{
            gauge_re[i][mu] = 0.5 + (next() & 31) * 0.01;
            gauge_im[i][mu] = (next() & 31) * 0.01 - 0.15;
        }}
        prop_re[i] = 1.0;
        prop_im[i] = 0.0;
    }}
}}

void apply_links(double *pr, double *pi, int n) {{
    int i;
    int mu;
    double ar;
    double ai;
    for (i = 1; i < n; i++) {{
        ar = pr[i]; ai = pi[i];
        for (mu = 0; mu < 4; mu++) {{
            ar = ar * gauge_re[i][mu] - ai * gauge_im[i][mu] + pr[i-1] * 0.1;
            ai = ai * gauge_re[i][mu] + ar * gauge_im[i][mu] + pi[i-1] * 0.1;
        }}
        pr[i] = ar * 0.98; pi[i] = ai * 0.98;
    }}
}}

double correlate(double *pr, double *pi, int n) {{
    int i;
    double c;
    c = 0.0;
    for (i = 0; i < n; i++) {{
        c = c + pr[i] * pr[i] + pi[i] * pi[i];
    }}
    return c;
}}

void normalize(double *pr, double *pi, int n) {{
    int i;
    for (i = 0; i < n; i++) {{
        pr[i] = pr[i] * 0.995; pi[i] = pi[i] * 0.995 + pr[i] * 0.001;
    }}
}}

int main() {{
    int r;
    double corr;
    init_lattice();
    corr = 0.0;
    for (r = 0; r < {iters}; r++) {{
        apply_links(prop_re, prop_im, {n});
        normalize(prop_re, prop_im, {n});
        corr = corr + correlate(prop_re, prop_im, {n});
    }}
    return corr;
}}
"#
    )
}

/// 107.mgrid: multigrid V-cycles — 3D stencils through pointer parameters
/// with a *walking linear index* (the f2c idiom for triple loops). The
/// walking index defeats the HLI's affine analysis almost as badly as it
/// defeats GCC's local test, reproducing the paper's smallest reduction
/// (15%): the only queries HLI wins are the cross-pointer (grid vs rhs)
/// pairs.
pub fn mgrid(s: Scale) -> String {
    let n = s.n.clamp(6, 20);
    let nnn = n * n * n;
    let iters = s.iters;
    format!(
        r#"double uf[{nnn}];
double rf[{nnn}];
int seed = 40404;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_grid() {{
    int i;
    for (i = 0; i < {nnn}; i++) {{
        uf[i] = 0.0;
        rf[i] = (next() & 15) * 0.05;
    }}
}}

void smooth(double *g, double *rhs) {{
    int i;
    int j;
    int k;
    int c;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            c = (i * {n} + j) * {n} + 1;
            for (k = 1; k < {n} - 1; k++) {{
                g[c] = g[c] * 0.4 + 0.1 * (g[c-1] + g[c+1] + g[c-{n}] + g[c+{n}] + g[c-{nsq}] + g[c+{nsq}]) + rhs[c] * 0.2;
                c++;
            }}
        }}
    }}
}}

void residual(double *g, double *rhs) {{
    int i;
    int j;
    int k;
    int c;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            c = (i * {n} + j) * {n} + 1;
            for (k = 1; k < {n} - 1; k++) {{
                rhs[c] = rhs[c] * 0.9 - g[c] * 0.05;
                c++;
            }}
        }}
    }}
}}

int main() {{
    int r;
    int i;
    double h;
    init_grid();
    for (r = 0; r < {iters}; r++) {{
        smooth(uf, rf);
        residual(uf, rf);
    }}
    h = 0.0;
    for (i = 1; i < {n} - 1; i++) {{
        h = h + uf[(i * {n} + i) * {n} + i] * 100.0 + rf[(i * {n} + 1) * {n} + i];
    }}
    return h;
}}
"#,
        nsq = n * n
    )
}

/// 141.apsi: mesoscale weather — the widest code of the suite: several
/// physics phases over distinct global fields with mixed access patterns
/// (the paper's highest query count, moderate 33% reduction).
pub fn apsi(s: Scale) -> String {
    let n = s.n.min(40);
    let iters = s.iters;
    format!(
        r#"double temp[{n}][{n}];
double wind_u[{n}][{n}];
double wind_v[{n}][{n}];
double humid[{n}][{n}];
double press[{n}];
int seed = 50505;

int next() {{
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}}

void init_atmos() {{
    int i;
    int j;
    for (i = 0; i < {n}; i++) {{
        press[i] = 1000.0 - i * 2.5;
        for (j = 0; j < {n}; j++) {{
            temp[i][j] = 280.0 + (next() & 15) * 0.2;
            wind_u[i][j] = (next() & 7) * 0.4;
            wind_v[i][j] = (next() & 7) * 0.3;
            humid[i][j] = 0.4 + (next() & 7) * 0.05;
        }}
    }}
}}

void advect() {{
    int i;
    int j;
    int jup;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            jup = j - 1;
            if (wind_u[i][j] < 0.0) {{
                jup = j + 1;
            }}
            temp[i][j] = temp[i][j] - 0.02 * wind_u[i][j] * (temp[i][jup] - temp[i][j-1]) - 0.02 * wind_v[i][j] * (temp[i+1][j] - temp[i-1][j]);
        }}
    }}
}}

void diffuse_moisture() {{
    int i;
    int j;
    for (i = 1; i < {n} - 1; i++) {{
        for (j = 1; j < {n} - 1; j++) {{
            humid[i][j] = humid[i][j] * 0.96 + 0.01 * (humid[i-1][j] + humid[i+1][j] + humid[i][j-1] + humid[i][j+1]);
        }}
    }}
}}

void geostrophic() {{
    int i;
    int j;
    double dp;
    for (i = 1; i < {n} - 1; i++) {{
        dp = press[i+1] - press[i-1];
        for (j = 1; j < {n} - 1; j++) {{
            wind_u[i][j] = wind_u[i][j] * 0.99 - dp * 0.001; wind_v[i][j] = wind_v[i][j] * 0.99 + dp * 0.0005 + temp[i][j] * 0.00001;
        }}
    }}
}}

int main() {{
    int r;
    int i;
    double h;
    init_atmos();
    for (r = 0; r < {iters}; r++) {{
        advect();
        diffuse_moisture();
        geostrophic();
    }}
    h = 0.0;
    for (i = 0; i < {n}; i++) {{
        h = h + temp[i][i] + humid[i][{n} - 1 - i] * 10.0;
    }}
    return h;
}}
"#
    )
}
