//! Seeded generative MiniC corpus — the workload substrate behind the
//! `perfbench` perf trajectory (ROADMAP item 4).
//!
//! The fixed 14-program suite mirrors the paper's Table 1/2 rows but is
//! far too small to measure compile-pipeline scaling or to exercise the
//! long tail of aliasing/loop/call shapes. This module generates whole
//! MiniC programs from a [`CorpusSpec`]: function count, aliasing density
//! at call sites, loop-nesting depth and call-graph shape are all knobs,
//! and generation is a pure function of the spec — the same spec yields
//! **byte-identical sources** on every machine, which is what lets
//! `BENCH_*.json` counter metrics be compared exactly across PRs.
//!
//! Every generated program is *closed* and *terminating by construction*:
//!
//! * all loops are counted `for` loops bounded by the `n` parameter or a
//!   small constant — no data-dependent `while`;
//! * the call graph is a forest (each function has exactly one caller,
//!   shaped by [`CallShape`]), calls appear only at the top level of a
//!   body (never inside a loop), and chains are segmented below the
//!   executors' 128-frame limit — so each function runs exactly once and
//!   total work is linear in the function count;
//! * array subscripts are `i`/`j`/`k` plus offsets `< 4` with loop bounds
//!   `n <= array_len - 4`, or accumulator-masked (`t & 7`), so every
//!   access is in bounds;
//! * arithmetic sticks to `+ - * & | ^ <<` with periodic masking —
//!   wrapping-safe and identical in the AST interpreter and the machine
//!   models (no division, whose faults would depend on generated data).
//!
//! The observable result (the differential-oracle contract) is the same
//! as the hand-written suite's: `main`'s return value plus the checksum
//! of all global memory.

use crate::rng::XorShift64;
use crate::Benchmark;
use std::fmt::Write as _;

/// Shape of the generated call forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallShape {
    /// `f0 -> f1 -> f2 -> ...` — deep REF/MOD propagation chains
    /// (segmented every `CHAIN_SEGMENT` functions to stay below the
    /// executors' 128-frame call-depth limit).
    Chain,
    /// A balanced binary tree — the "realistic program" default.
    Balanced,
    /// Every function called directly from `f0` — wide, flat REF/MOD
    /// fan-out, the worst case for call-site query volume per caller.
    Wide,
}

/// Maximum chain length before [`CallShape::Chain`] starts a new root.
const CHAIN_SEGMENT: usize = 48;

/// Knobs of the generative corpus. All fields are plain data so a spec
/// can be echoed into `BENCH_*.json` and reproduced exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Base seed; program `i` derives its stream from `seed` and `i`.
    pub seed: u64,
    /// Number of programs to generate.
    pub programs: usize,
    /// Functions per program (excluding `main`).
    pub funcs: usize,
    /// Maximum `for`-nest depth generated inside one function (1..=3).
    pub max_loop_depth: usize,
    /// Percent of call sites passing the *same* array to both pointer
    /// parameters (may-alias pressure on the points-to side).
    pub alias_pct: u8,
    /// Call-forest shape.
    pub shape: CallShape,
    /// Global `int` arrays per program (at least 2).
    pub arrays: usize,
    /// Length of each global array (at least 16).
    pub array_len: usize,
    /// Top-level statement budget per function body (loops, scalar ops,
    /// branches — calls to children come on top).
    pub stmts: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: 0xC0FFEE,
            programs: 4,
            funcs: 16,
            max_loop_depth: 2,
            alias_pct: 30,
            shape: CallShape::Balanced,
            arrays: 4,
            array_len: 32,
            stmts: 4,
        }
    }
}

impl CorpusSpec {
    /// A tiny spec for fast smoke tests.
    pub fn smoke() -> Self {
        CorpusSpec { programs: 2, funcs: 6, ..Default::default() }
    }

    /// Total functions the spec generates (excluding `main`s).
    pub fn total_funcs(&self) -> usize {
        self.programs * self.funcs
    }

    /// Clamp degenerate values so generation is always well-defined.
    fn normalized(&self) -> CorpusSpec {
        CorpusSpec {
            programs: self.programs.max(1),
            funcs: self.funcs.max(1),
            max_loop_depth: self.max_loop_depth.clamp(1, 3),
            arrays: self.arrays.max(2),
            array_len: self.array_len.max(16),
            stmts: self.stmts.clamp(1, 16),
            ..*self
        }
    }
}

/// Generate the whole corpus: `spec.programs` programs, each wrapped as a
/// [`Benchmark`] named `gen.s<seed-hex>.p<index>`.
pub fn generate(spec: &CorpusSpec) -> Vec<Benchmark> {
    let spec = spec.normalized();
    (0..spec.programs)
        .map(|i| Benchmark {
            name: format!("gen.s{:x}.p{i:02}", spec.seed),
            suite: "GEN".to_string(),
            is_fp: false,
            source: generate_program(&spec, i),
        })
        .collect()
}

/// Apply a line-count-preserving one-constant edit to function `f<func>`
/// of a generated program: the seed statement `    t = <k+3>;` right
/// after the declarations becomes `    t = <k+3+delta>;`. Returns `None`
/// when the function (or its seed statement) is not present.
///
/// Because the edit rewrites digits on one existing line, every other
/// function keeps its exact source text *and* source line numbers, so
/// its lowered RTL and HLI unit are byte-identical to the pristine
/// program's. `servebench` leans on that to get exactly one cache miss
/// per steady-state epoch.
pub fn edit_program(source: &str, func: usize, delta: u64) -> Option<String> {
    let header = format!("int f{func}(int *p, int *q, int n) {{\n");
    let body_at = source.find(&header)? + header.len();
    const PAT: &str = "    t = ";
    let mut at = body_at;
    loop {
        let num_at = at + source[at..].find(PAT)? + PAT.len();
        let digits = source[num_at..].bytes().take_while(|b| b.is_ascii_digit()).count();
        // Only the pure-constant seed assignment qualifies; expressions
        // (`t = t + …`, `t = ((t * 5) …`) fall through to the next line.
        if digits > 0 && source[num_at + digits..].starts_with(";\n") {
            let n: u64 = source[num_at..num_at + digits].parse().ok()?;
            let mut out = String::with_capacity(source.len() + 4);
            out.push_str(&source[..num_at]);
            let _ = write!(out, "{}", n + delta);
            out.push_str(&source[num_at + digits..]);
            return Some(out);
        }
        at = num_at;
    }
}

/// Parent of function `k` (`None` for roots) under the spec's shape.
fn parent_of(shape: CallShape, k: usize) -> Option<usize> {
    if k == 0 {
        return None;
    }
    match shape {
        CallShape::Chain => {
            if k.is_multiple_of(CHAIN_SEGMENT) {
                None // new segment root, called from main
            } else {
                Some(k - 1)
            }
        }
        CallShape::Balanced => Some((k - 1) / 2),
        CallShape::Wide => Some(0),
    }
}

/// One generated program: globals, `funcs` functions forming a call
/// forest, and a `main` that invokes every root and returns a checksum.
pub fn generate_program(spec: &CorpusSpec, index: usize) -> String {
    let spec = spec.normalized();
    let mut rng = XorShift64::new(
        spec.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
    );
    let mut out = String::new();

    for a in 0..spec.arrays {
        let _ = writeln!(out, "int g{a}[{}];", spec.array_len);
    }
    out.push_str("int acc;\n\n");

    // children[k] = functions k calls (one call each, top level).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spec.funcs];
    let mut roots: Vec<usize> = Vec::new();
    for k in 0..spec.funcs {
        match parent_of(spec.shape, k) {
            Some(p) => children[p].push(k),
            None => roots.push(k),
        }
    }

    // Emit callees before callers so every call refers to an
    // already-declared function (MiniC has no forward declarations).
    for k in (0..spec.funcs).rev() {
        emit_function(&mut out, &spec, k, &children[k], &mut rng);
    }

    let n = spec.array_len - 4;
    out.push_str("int main() {\n    int t;\n    t = 0;\n");
    for (r, k) in roots.iter().enumerate() {
        let (a, b) = pick_arg_pair(&spec, &mut rng, None);
        let _ = writeln!(out, "    t = t + f{k}({a}, {b}, {n}) + {};", r + 1);
    }
    out.push_str("    return (t + acc) & 1048575;\n}\n");
    out
}

/// The pointer-expression pool a call site draws its two arguments from:
/// the caller's own parameters (when inside a function) and the global
/// arrays. With probability `alias_pct` both arguments are the same
/// expression — a guaranteed must-alias pair the analyzer has to respect.
fn pick_arg_pair(
    spec: &CorpusSpec,
    rng: &mut XorShift64,
    own_params: Option<()>,
) -> (String, String) {
    let mut pool: Vec<String> = (0..spec.arrays).map(|a| format!("g{a}")).collect();
    if own_params.is_some() {
        pool.push("p".into());
        pool.push("q".into());
    }
    let first = rng.choose(&pool).clone();
    if rng.next_range(100) < spec.alias_pct as u64 {
        (first.clone(), first)
    } else {
        (first, rng.choose(&pool).clone())
    }
}

/// Emit one `int fK(int *p, int *q, int n)` definition.
fn emit_function(
    out: &mut String,
    spec: &CorpusSpec,
    k: usize,
    children: &[usize],
    rng: &mut XorShift64,
) {
    let _ = writeln!(out, "int f{k}(int *p, int *q, int n) {{");
    out.push_str("    int i;\n    int j;\n    int v;\n    int t;\n");
    let _ = writeln!(out, "    t = {};", k + 3);

    // Interleave child calls among the generated statements: one call per
    // child, each child called exactly once (termination by construction).
    let mut slots: Vec<Slot> = (0..spec.stmts).map(|_| Slot::Stmt).collect();
    for &c in children {
        let at = rng.next_range(slots.len() as u64 + 1) as usize;
        slots.insert(at, Slot::Call(c));
    }
    for slot in slots {
        match slot {
            Slot::Call(c) => {
                let (a, b) = pick_arg_pair(spec, rng, Some(()));
                let _ = writeln!(out, "    t = t + f{c}({a}, {b}, n);");
            }
            Slot::Stmt => emit_stmt(out, spec, rng),
        }
    }

    out.push_str("    acc = acc + (t & 4095);\n");
    out.push_str("    return t & 262143;\n}\n\n");
}

enum Slot {
    Stmt,
    Call(usize),
}

/// One top-level statement: a loop nest, a scalar update, or a branch.
fn emit_stmt(out: &mut String, spec: &CorpusSpec, rng: &mut XorShift64) {
    match rng.next_range(10) {
        0..=4 => emit_loop_nest(out, spec, rng, 1),
        5..=6 => {
            let c = rng.next_range(97) + 1;
            let _ = writeln!(out, "    t = ((t * 5) + {c}) & 262143;");
        }
        7 => {
            let a = rng.next_range(spec.arrays as u64);
            let _ = writeln!(
                out,
                "    if (t & 1) {{ g{a}[t & 7] = t; }} else {{ t = t ^ p[t & 3]; }}"
            );
        }
        _ => {
            let sh = rng.next_range(3) + 1;
            let _ = writeln!(out, "    t = (t << {sh}) ^ q[0] ^ {};", rng.next_range(251));
        }
    }
}

/// A counted loop nest of depth `depth..=spec.max_loop_depth`, built from
/// memory-dense body statements over the pointer parameters and globals.
fn emit_loop_nest(out: &mut String, spec: &CorpusSpec, rng: &mut XorShift64, depth: usize) {
    let pad = "    ".repeat(depth);
    let (var, bound) = match depth {
        1 => ("i".to_string(), "n".to_string()),
        2 => ("j".to_string(), "8".to_string()),
        _ => ("v".to_string(), "4".to_string()),
    };
    let _ = writeln!(out, "{pad}for ({var} = 0; {var} < {bound}; {var}++) {{");
    let inner = "    ".repeat(depth + 1);
    let body_stmts = rng.next_range(2) + 2;
    for _ in 0..body_stmts {
        emit_body_stmt(out, spec, rng, &inner, &var);
    }
    if depth < spec.max_loop_depth && rng.next_range(100) < 55 {
        emit_loop_nest(out, spec, rng, depth + 1);
    }
    let _ = writeln!(out, "{pad}}}");
}

/// One memory-touching statement inside a loop at induction var `v`.
fn emit_body_stmt(out: &mut String, spec: &CorpusSpec, rng: &mut XorShift64, pad: &str, var: &str) {
    let arr = |rng: &mut XorShift64| format!("g{}", rng.next_range(spec.arrays as u64));
    match rng.next_range(8) {
        0 => {
            let _ = writeln!(out, "{pad}p[{var}] = q[{var}] + t;");
        }
        1 => {
            let off = rng.next_range(4);
            let a = arr(rng);
            let b = arr(rng);
            let _ = writeln!(out, "{pad}{a}[{var} + {off}] = {b}[{var}] ^ t;");
        }
        2 => {
            let _ = writeln!(out, "{pad}t = t + p[{var}];");
        }
        3 => {
            let a = arr(rng);
            let _ = writeln!(out, "{pad}t = (t + {a}[{var}]) & 262143;");
        }
        4 => {
            let _ = writeln!(out, "{pad}q[t & 7] = q[t & 7] + 1;");
        }
        5 => {
            let a = arr(rng);
            let _ = writeln!(out, "{pad}{a}[{var}] = ({a}[{var}] * 3) & 65535;");
        }
        6 => {
            let _ = writeln!(out, "{pad}if (p[{var}] & 1) {{ t = t + 1; }}");
        }
        _ => {
            let c = rng.next_range(13) + 1;
            let _ = writeln!(out, "{pad}p[{var}] = (p[{var}] | {c}) ^ ({var} << 1);");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;
    use hli_lang::interp::run_program_limited;

    #[test]
    fn same_seed_is_byte_identical() {
        let spec = CorpusSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), spec.programs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source, "{} not deterministic", x.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CorpusSpec { seed: 1, ..Default::default() });
        let b = generate(&CorpusSpec { seed: 2, ..Default::default() });
        assert_ne!(a[0].source, b[0].source);
    }

    #[test]
    fn every_shape_compiles_and_terminates() {
        for shape in [CallShape::Chain, CallShape::Balanced, CallShape::Wide] {
            let spec = CorpusSpec { shape, programs: 2, funcs: 12, ..Default::default() };
            for b in generate(&spec) {
                let (p, s) = compile_to_ast(&b.source)
                    .unwrap_or_else(|e| panic!("{} ({shape:?}): {e}\n{}", b.name, b.source));
                let r = run_program_limited(&p, &s, 10_000_000)
                    .unwrap_or_else(|e| panic!("{} ({shape:?}) faults: {e}", b.name));
                let again = run_program_limited(&p, &s, 10_000_000).unwrap();
                assert_eq!(r.ret, again.ret);
                assert_eq!(r.global_checksum, again.global_checksum);
                assert!(r.stats.loads + r.stats.stores > 20, "{} barely ran", b.name);
            }
        }
    }

    #[test]
    fn chain_shape_stays_below_the_frame_limit() {
        // 200 functions in Chain shape must segment into several roots:
        // the executors refuse call depths past 128 frames.
        let spec = CorpusSpec {
            shape: CallShape::Chain,
            programs: 1,
            funcs: 200,
            ..Default::default()
        };
        let b = &generate(&spec)[0];
        let (p, s) = compile_to_ast(&b.source).unwrap();
        run_program_limited(&p, &s, 50_000_000).expect("chain must not overflow the stack");
    }

    #[test]
    fn alias_knob_changes_sources_and_full_alias_still_runs() {
        let none = generate(&CorpusSpec { alias_pct: 0, ..Default::default() });
        let full = generate(&CorpusSpec { alias_pct: 100, ..Default::default() });
        assert_ne!(none[0].source, full[0].source);
        let (p, s) = compile_to_ast(&full[0].source).unwrap();
        run_program_limited(&p, &s, 10_000_000).expect("fully aliased corpus still sound");
    }

    #[test]
    fn loop_depth_knob_is_visible() {
        let deep = generate(&CorpusSpec { max_loop_depth: 3, seed: 7, ..Default::default() });
        let has_depth3 = deep.iter().any(|b| b.source.contains("for (v = 0"));
        assert!(has_depth3, "depth-3 spec never generated a depth-3 nest");
        let flat = generate(&CorpusSpec { max_loop_depth: 1, seed: 7, ..Default::default() });
        assert!(flat.iter().all(|b| !b.source.contains("for (j = 0")));
    }

    #[test]
    fn edit_program_changes_one_line_and_nothing_else() {
        let spec = CorpusSpec::smoke();
        let src = generate_program(&spec, 0);
        let edited = edit_program(&src, 1, 10).unwrap();
        assert_eq!(src.lines().count(), edited.lines().count(), "line count preserved");
        let diffs: Vec<(&str, &str)> =
            src.lines().zip(edited.lines()).filter(|(a, b)| a != b).collect();
        assert_eq!(diffs.len(), 1, "exactly one line differs");
        assert_eq!(diffs[0], ("    t = 4;", "    t = 14;"), "f1's seed constant (1+3)");
        // Deterministic, and the edited program still compiles and runs.
        assert_eq!(edit_program(&src, 1, 10).unwrap(), edited);
        let (p, s) = compile_to_ast(&edited).unwrap();
        run_program_limited(&p, &s, 10_000_000).unwrap();
        // Unknown function index: no silent fallback edit.
        assert!(edit_program(&src, spec.funcs + 7, 1).is_none());
    }

    #[test]
    fn spec_normalization_clamps_degenerate_values() {
        let degenerate = CorpusSpec {
            programs: 0,
            funcs: 0,
            max_loop_depth: 9,
            arrays: 0,
            array_len: 1,
            stmts: 0,
            ..Default::default()
        };
        let benches = generate(&degenerate);
        assert_eq!(benches.len(), 1);
        let (p, s) = compile_to_ast(&benches[0].source).unwrap();
        run_program_limited(&p, &s, 10_000_000).unwrap();
    }
}
