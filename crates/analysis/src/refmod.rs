//! Interprocedural REF/MOD analysis.
//!
//! Computes, for every function, the set of abstract objects (declared
//! variables) the function — including everything it transitively calls —
//! may read (*REF*) or write (*MOD*). Pointer accesses are resolved through
//! [`crate::pointsto`]; an access through an unbounded pointer poisons the
//! summary (`unknown` = may touch anything). This feeds the HLI's function
//! call REF/MOD table, which the paper's Figure 4 uses to keep CSE's
//! subexpression table alive across calls.

use crate::pointsto::PointsTo;
use hli_lang::ast::Program;
use hli_lang::memwalk::{walk_function, AccessKind, AccessPath};
use hli_lang::sema::{Sema, SymId};
use std::collections::{BTreeSet, HashMap};

/// REF/MOD summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefModSet {
    pub refs: BTreeSet<SymId>,
    pub mods: BTreeSet<SymId>,
    /// True when some access cannot be bounded (unbounded pointer, or a
    /// call to an unknown function): consumers must assume the universe.
    pub unknown: bool,
}

impl RefModSet {
    /// May the function read `obj`?
    pub fn may_ref(&self, obj: SymId) -> bool {
        self.unknown || self.refs.contains(&obj)
    }

    /// May the function write `obj`?
    pub fn may_mod(&self, obj: SymId) -> bool {
        self.unknown || self.mods.contains(&obj)
    }

    fn absorb(&mut self, other: &RefModSet) -> bool {
        let before = (self.refs.len(), self.mods.len(), self.unknown);
        self.refs.extend(other.refs.iter().copied());
        self.mods.extend(other.mods.iter().copied());
        self.unknown |= other.unknown;
        before != (self.refs.len(), self.mods.len(), self.unknown)
    }
}

/// REF/MOD summaries for a whole program, by function index.
#[derive(Debug, Clone, Default)]
pub struct RefMod {
    pub per_func: Vec<RefModSet>,
    by_name: HashMap<String, usize>,
}

impl RefMod {
    pub fn of(&self, name: &str) -> Option<&RefModSet> {
        self.by_name.get(name).map(|&i| &self.per_func[i])
    }
}

/// Compute summaries bottom-up over the call graph (fixpoint handles
/// recursion).
pub fn analyze(prog: &Program, sema: &Sema, pts: &PointsTo) -> RefMod {
    let n = prog.funcs.len();
    let mut sets: Vec<RefModSet> = Vec::with_capacity(n);
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];

    for (fi, f) in prog.funcs.iter().enumerate() {
        let mut rm = RefModSet::default();
        for ev in walk_function(f, sema) {
            match (&ev.kind, &ev.path) {
                (AccessKind::Load, AccessPath::Var(s) | AccessPath::ArrayElem(s, _)) => {
                    rm.refs.insert(*s);
                }
                (AccessKind::Store, AccessPath::Var(s) | AccessPath::ArrayElem(s, _)) => {
                    rm.mods.insert(*s);
                }
                (kind, AccessPath::PtrAccess(root, _)) => {
                    let into = |set: &mut BTreeSet<SymId>, unknown: &mut bool| match root {
                        Some(p) => match pts.targets(*p) {
                            Some(objs) => set.extend(objs.iter().copied()),
                            None => *unknown = true,
                        },
                        None => *unknown = true,
                    };
                    match kind {
                        AccessKind::Load => into(&mut rm.refs, &mut rm.unknown),
                        AccessKind::Store => into(&mut rm.mods, &mut rm.unknown),
                        AccessKind::Call => {}
                    }
                }
                (_, AccessPath::Call { callee }) => match sema.func_sigs.get(callee) {
                    Some(sig) => {
                        callees[fi].insert(sig.index as usize);
                    }
                    None => rm.unknown = true,
                },
                // ABI stack traffic touches no program object.
                (_, AccessPath::StackArg { .. } | AccessPath::StackParamEntry { .. }) => {}
                // A Call kind never carries a Var/ArrayElem path.
                (AccessKind::Call, _) => unreachable!("call events use Call paths"),
            }
        }
        sets.push(rm);
    }

    // Fixpoint propagation callee → caller.
    loop {
        let mut changed = false;
        for fi in 0..n {
            let targets: Vec<usize> = callees[fi].iter().copied().collect();
            for g in targets {
                let callee = sets[g].clone();
                changed |= sets[fi].absorb(&callee);
            }
        }
        if !changed {
            break;
        }
    }

    let by_name = prog.funcs.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
    RefMod { per_func: sets, by_name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto;
    use hli_lang::compile_to_ast;

    fn rm_of(src: &str) -> (RefMod, Sema) {
        let (p, s) = compile_to_ast(src).unwrap();
        let pts = pointsto::analyze(&p, &s);
        (analyze(&p, &s, &pts), s)
    }

    fn sym(s: &Sema, name: &str) -> SymId {
        s.syms
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i as SymId)
            .unwrap()
    }

    #[test]
    fn direct_global_effects() {
        let (rm, s) = rm_of("int g; int h; int f() { return g; } void w() { h = 1; } int main() { w(); return f(); }");
        let f = rm.of("f").unwrap();
        assert!(f.may_ref(sym(&s, "g")));
        assert!(!f.may_mod(sym(&s, "g")));
        assert!(!f.may_ref(sym(&s, "h")));
        let w = rm.of("w").unwrap();
        assert!(w.may_mod(sym(&s, "h")));
        assert!(!w.unknown);
    }

    #[test]
    fn effects_propagate_to_callers() {
        let (rm, s) = rm_of(
            "int g; void inner() { g = 1; } void outer() { inner(); } int main() { outer(); return 0; }",
        );
        assert!(rm.of("outer").unwrap().may_mod(sym(&s, "g")));
        assert!(rm.of("main").unwrap().may_mod(sym(&s, "g")));
    }

    #[test]
    fn pointer_effects_resolved_via_points_to() {
        let (rm, s) = rm_of(
            "int a[8]; int b[8]; \
             void fill(int *p, int n) { int i; for (i = 0; i < n; i++) p[i] = i; } \
             int main() { fill(a, 8); return b[0]; }",
        );
        let fill = rm.of("fill").unwrap();
        assert!(fill.may_mod(sym(&s, "a")));
        assert!(!fill.may_mod(sym(&s, "b")), "b never passed to fill");
        assert!(!fill.unknown);
        // main inherits fill's effects and reads b directly.
        let main = rm.of("main").unwrap();
        assert!(main.may_mod(sym(&s, "a")));
        assert!(main.may_ref(sym(&s, "b")));
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (rm, s) = rm_of(
            "int g; int f(int n) { if (n <= 0) return g; return f(n - 1); } int main() { return f(3); }",
        );
        assert!(rm.of("f").unwrap().may_ref(sym(&s, "g")));
        assert!(rm.of("main").unwrap().may_ref(sym(&s, "g")));
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        let (rm, s) = rm_of(
            "int g; int h; \
             int odd(int n) { h = h + 1; if (n == 0) return 0; return even(n - 1); } \
             int even(int n) { g = g + 1; if (n == 0) return 1; return odd(n - 1); } \
             int main() { return even(4); }",
        );
        // `even` transitively mods both g (direct) and h (via odd).
        let even = rm.of("even").unwrap();
        assert!(even.may_mod(sym(&s, "g")));
        assert!(even.may_mod(sym(&s, "h")));
    }

    #[test]
    fn unbounded_pointer_poisons_summary() {
        let (rm, _) = rm_of("int *gp; int main() { return *gp; }");
        // gp is never assigned: the deref is unbounded.
        assert!(rm.of("main").unwrap().unknown);
    }

    #[test]
    fn address_taken_local_spill_is_a_mod_of_local_only() {
        let (rm, s) = rm_of(
            "int g; void t(int *p) { *p = 2; } int f() { int x; t(&x); return x; } int main() { return f(); }",
        );
        let f = rm.of("f").unwrap();
        assert!(f.may_mod(sym(&s, "x")), "callee writes caller local via pointer");
        assert!(!f.may_mod(sym(&s, "g")));
        assert!(!f.unknown);
    }
}
