//! Bounded regular array sections.
//!
//! When a loop's accesses are summarized at the enclosing region (the
//! paper's `a[0..9]` in Figure 2), the front-end needs a compact
//! over-approximation of *which elements* the loop touches. We use bounded
//! regular sections: one inclusive `[lo, hi]` interval per array dimension,
//! with `±∞` for unknown bounds.

use crate::affine::Affine;
use hli_lang::sema::{Bound, CanonLoop, SymId};
use std::fmt;

/// One end of a dimension interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecBound {
    Const(i64),
    NegInf,
    PosInf,
}

impl SecBound {
    fn min(self, other: SecBound) -> SecBound {
        use SecBound::*;
        match (self, other) {
            (NegInf, _) | (_, NegInf) => NegInf,
            (PosInf, x) | (x, PosInf) => x,
            (Const(a), Const(b)) => Const(a.min(b)),
        }
    }

    fn max(self, other: SecBound) -> SecBound {
        use SecBound::*;
        match (self, other) {
            (PosInf, _) | (_, PosInf) => PosInf,
            (NegInf, x) | (x, NegInf) => x,
            (Const(a), Const(b)) => Const(a.max(b)),
        }
    }
}

/// An inclusive per-dimension interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimRange {
    pub lo: SecBound,
    pub hi: SecBound,
}

impl DimRange {
    pub fn full() -> Self {
        DimRange { lo: SecBound::NegInf, hi: SecBound::PosInf }
    }

    pub fn point(v: i64) -> Self {
        DimRange { lo: SecBound::Const(v), hi: SecBound::Const(v) }
    }

    pub fn range(lo: i64, hi: i64) -> Self {
        DimRange { lo: SecBound::Const(lo), hi: SecBound::Const(hi) }
    }

    /// Conservative overlap: unknown bounds overlap everything.
    pub fn may_overlap(&self, other: &DimRange) -> bool {
        let above = match (self.lo, other.hi) {
            (SecBound::Const(a), SecBound::Const(b)) => a > b,
            _ => false,
        };
        let below = match (self.hi, other.lo) {
            (SecBound::Const(a), SecBound::Const(b)) => a < b,
            _ => false,
        };
        !(above || below)
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &DimRange) -> DimRange {
        DimRange { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    pub fn is_point(&self) -> bool {
        matches!((self.lo, self.hi), (SecBound::Const(a), SecBound::Const(b)) if a == b)
    }
}

impl fmt::Display for DimRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = |x: SecBound| match x {
            SecBound::Const(v) => v.to_string(),
            SecBound::NegInf => "-inf".into(),
            SecBound::PosInf => "+inf".into(),
        };
        if self.is_point() {
            write!(f, "{}", b(self.lo))
        } else {
            write!(f, "{}..{}", b(self.lo), b(self.hi))
        }
    }
}

/// A section of one array: an interval per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub dims: Vec<DimRange>,
}

impl Section {
    pub fn full(ndims: usize) -> Self {
        Section { dims: vec![DimRange::full(); ndims] }
    }

    /// Two sections of the *same array* may overlap iff every dimension's
    /// intervals may overlap.
    pub fn may_overlap(&self, other: &Section) -> bool {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        self.dims.iter().zip(&other.dims).all(|(a, b)| a.may_overlap(b))
    }

    pub fn hull(&self, other: &Section) -> Section {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        Section {
            dims: self.dims.iter().zip(&other.dims).map(|(a, b)| a.hull(b)).collect(),
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

/// The iteration range a canonical loop's variable covers, as constants
/// when known.
fn ivar_range(cl: &CanonLoop) -> (Option<i64>, Option<i64>) {
    let lo = match cl.lower {
        Bound::Const(v) => Some(v),
        _ => None,
    };
    let hi = match cl.upper {
        Bound::Const(v) => Some(if cl.inclusive { v } else { v - 1 }),
        _ => None,
    };
    (lo, hi)
}

/// Range of an affine subscript over one loop's iteration space, holding
/// every other symbol fixed — i.e. the per-dimension interval that replaces
/// the `ivar` term when summarizing at the parent region. Symbols other
/// than `ivar` widen the interval to ±∞ unless absent.
pub fn subscript_range(f: &Affine, ivar: SymId, cl: &CanonLoop) -> DimRange {
    // Any other symbolic term ⇒ unknown placement.
    if f.symbols().any(|s| s != ivar) {
        return DimRange::full();
    }
    let a = f.coeff(ivar);
    if a == 0 {
        return DimRange::point(f.constant);
    }
    let (lo, hi) = ivar_range(cl);
    let (Some(lo), Some(hi)) = (lo, hi) else { return DimRange::full() };
    if hi < lo {
        // Zero-trip loop: empty; represent as the degenerate first point.
        return DimRange::point(a * lo + f.constant);
    }
    let v1 = a * lo + f.constant;
    let v2 = a * hi + f.constant;
    DimRange::range(v1.min(v2), v1.max(v2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop01(n: i64) -> CanonLoop {
        CanonLoop {
            ivar: 0,
            lower: Bound::Const(0),
            upper: Bound::Const(n),
            inclusive: false,
            step: 1,
        }
    }

    #[test]
    fn point_and_range_overlap() {
        assert!(DimRange::point(5).may_overlap(&DimRange::range(0, 9)));
        assert!(!DimRange::point(50).may_overlap(&DimRange::range(0, 9)));
        assert!(DimRange::range(0, 4).may_overlap(&DimRange::range(4, 8)));
        assert!(!DimRange::range(0, 4).may_overlap(&DimRange::range(5, 8)));
    }

    #[test]
    fn unknown_bounds_overlap_everything() {
        assert!(DimRange::full().may_overlap(&DimRange::point(3)));
        let half = DimRange { lo: SecBound::Const(0), hi: SecBound::PosInf };
        assert!(half.may_overlap(&DimRange::point(100)));
        // But a fully-constant disjointness still refutes.
        let neg = DimRange { lo: SecBound::NegInf, hi: SecBound::Const(-1) };
        assert!(!neg.may_overlap(&DimRange::point(0)));
    }

    #[test]
    fn hull_extends() {
        let h = DimRange::range(0, 3).hull(&DimRange::range(7, 9));
        assert_eq!(h, DimRange::range(0, 9));
        let h2 = DimRange::full().hull(&DimRange::point(1));
        assert_eq!(h2, DimRange::full());
    }

    #[test]
    fn subscript_range_simple() {
        // i over [0,10): a[i] covers 0..9, a[i+2] covers 2..11, a[2i] 0..18.
        let cl = loop01(10);
        assert_eq!(subscript_range(&Affine::var(0), 0, &cl), DimRange::range(0, 9));
        let f = Affine::var(0).add(&Affine::constant(2));
        assert_eq!(subscript_range(&f, 0, &cl), DimRange::range(2, 11));
        let g = Affine::var(0).scale(2);
        assert_eq!(subscript_range(&g, 0, &cl), DimRange::range(0, 18));
    }

    #[test]
    fn subscript_range_negative_stride() {
        let cl = loop01(10);
        let f = Affine::var(0).scale(-1).add(&Affine::constant(9)); // 9 - i
        assert_eq!(subscript_range(&f, 0, &cl), DimRange::range(0, 9));
    }

    #[test]
    fn subscript_range_constant_subscript() {
        let cl = loop01(10);
        assert_eq!(subscript_range(&Affine::constant(4), 0, &cl), DimRange::point(4));
    }

    #[test]
    fn subscript_range_foreign_symbol_is_full() {
        let cl = loop01(10);
        let f = Affine::var(0).add(&Affine::var(5));
        assert_eq!(subscript_range(&f, 0, &cl), DimRange::full());
    }

    #[test]
    fn subscript_range_symbolic_bound_is_full() {
        let cl = CanonLoop {
            ivar: 0,
            lower: Bound::Const(0),
            upper: Bound::Sym(9),
            inclusive: false,
            step: 1,
        };
        assert_eq!(subscript_range(&Affine::var(0), 0, &cl), DimRange::full());
    }

    #[test]
    fn section_overlap_all_dims() {
        let a = Section { dims: vec![DimRange::range(0, 4), DimRange::point(3)] };
        let b = Section { dims: vec![DimRange::range(4, 9), DimRange::point(3)] };
        let c = Section { dims: vec![DimRange::range(4, 9), DimRange::point(4)] };
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c), "second dimension disjoint");
        assert_eq!(a.hull(&b).dims[0], DimRange::range(0, 9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DimRange::range(0, 9).to_string(), "0..9");
        assert_eq!(DimRange::point(4).to_string(), "4");
        let s = Section { dims: vec![DimRange::range(0, 9), DimRange::full()] };
        assert_eq!(s.to_string(), "[0..9], [-inf..+inf]");
    }
}
