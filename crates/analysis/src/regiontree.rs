//! The hierarchical region structure of a function.
//!
//! *"A region can be a program unit or a loop and can include sub-regions"*
//! (Section 2.2). This module builds that tree from the AST: node 0 is the
//! program unit; every loop statement (`for`, `while`, `do`) becomes a
//! nested region. Canonical `for` loops carry their recognized bounds.
//!
//! Alongside the tree we record a *precise* expression→region map: items
//! are assigned to regions through the expressions that generate them, not
//! through line heuristics. `for`-header expressions (init/cond/step)
//! belong to the loop region itself, matching where the back-end emits
//! their code.

use hli_lang::ast::*;
use hli_lang::sema::{CanonLoop, Sema};
use std::collections::HashMap;

/// One region node.
#[derive(Debug, Clone)]
pub struct RegionNode {
    pub id: usize,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
    /// The loop statement, `None` for the unit region.
    pub stmt: Option<StmtId>,
    /// Canonical-loop facts, when the loop qualifies.
    pub canon: Option<CanonLoop>,
    /// Source-line span `[lo, hi]` covered by the region.
    pub span: (u32, u32),
    /// Nesting depth (unit = 0).
    pub depth: usize,
}

/// The region tree of one function.
#[derive(Debug, Clone)]
pub struct RegionTree {
    pub nodes: Vec<RegionNode>,
    /// Loop statement → its region.
    pub stmt_region: HashMap<StmtId, usize>,
    /// Every expression → the innermost region containing it.
    pub expr_region: HashMap<ExprId, usize>,
}

impl RegionTree {
    pub fn unit(&self) -> &RegionNode {
        &self.nodes[0]
    }

    /// Innermost region of an expression (unit if unknown).
    pub fn region_of_expr(&self, e: ExprId) -> usize {
        self.expr_region.get(&e).copied().unwrap_or(0)
    }

    /// Is `anc` an ancestor of (or equal to) `node`?
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.nodes[n].parent;
        }
        false
    }

    /// Regions in bottom-up order (children before parents).
    pub fn bottom_up(&self) -> Vec<usize> {
        // Children always have larger ids (appended during the walk).
        (0..self.nodes.len()).rev().collect()
    }

    /// Path from the unit down to `node`, inclusive.
    pub fn path(&self, node: usize) -> Vec<usize> {
        let mut p = vec![node];
        let mut cur = node;
        while let Some(par) = self.nodes[cur].parent {
            p.push(par);
            cur = par;
        }
        p.reverse();
        p
    }
}

/// Build the region tree of `f`.
pub fn build_region_tree(f: &FuncDef, sema: &Sema) -> RegionTree {
    let mut b = Builder {
        sema,
        tree: RegionTree {
            nodes: vec![RegionNode {
                id: 0,
                parent: None,
                children: Vec::new(),
                stmt: None,
                canon: None,
                span: (f.line, f.line),
                depth: 0,
            }],
            stmt_region: HashMap::new(),
            expr_region: HashMap::new(),
        },
    };
    b.block(&f.body, 0);
    // Widen ancestors to cover descendants.
    for i in (1..b.tree.nodes.len()).rev() {
        let (lo, hi) = b.tree.nodes[i].span;
        if let Some(p) = b.tree.nodes[i].parent {
            let ps = &mut b.tree.nodes[p].span;
            ps.0 = ps.0.min(lo);
            ps.1 = ps.1.max(hi);
        }
    }
    b.tree
}

struct Builder<'a> {
    sema: &'a Sema,
    tree: RegionTree,
}

impl<'a> Builder<'a> {
    fn widen(&mut self, region: usize, line: u32) {
        let s = &mut self.tree.nodes[region].span;
        s.0 = s.0.min(line);
        s.1 = s.1.max(line);
    }

    fn record_expr(&mut self, e: &Expr, region: usize) {
        self.widen(region, e.line);
        e.walk(&mut |x| {
            self.tree.expr_region.insert(x.id, region);
        });
        // `walk` already visits `e` itself; the closure above handles all.
    }

    fn new_region(&mut self, stmt: &Stmt, parent: usize) -> usize {
        let id = self.tree.nodes.len();
        self.tree.nodes.push(RegionNode {
            id,
            parent: Some(parent),
            children: Vec::new(),
            stmt: Some(stmt.id),
            canon: self.sema.loops.get(&stmt.id).cloned(),
            span: (stmt.line, stmt.line),
            depth: self.tree.nodes[parent].depth + 1,
        });
        self.tree.nodes[parent].children.push(id);
        self.tree.stmt_region.insert(stmt.id, id);
        id
    }

    fn block(&mut self, b: &Block, region: usize) {
        for s in &b.stmts {
            self.stmt(s, region);
        }
    }

    fn stmt(&mut self, s: &Stmt, region: usize) {
        self.widen(region, s.line);
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(e) = &d.init {
                    self.record_expr(e, region);
                }
            }
            StmtKind::Expr(e) => self.record_expr(e, region),
            StmtKind::Block(b) => self.block(b, region),
            StmtKind::If { cond, then_body, else_body } => {
                self.record_expr(cond, region);
                self.stmt(then_body, region);
                if let Some(e) = else_body {
                    self.stmt(e, region);
                }
            }
            StmtKind::While { cond, body } => {
                let r = self.new_region(s, region);
                self.record_expr(cond, r);
                self.stmt(body, r);
            }
            StmtKind::DoWhile { body, cond } => {
                let r = self.new_region(s, region);
                self.stmt(body, r);
                self.record_expr(cond, r);
            }
            StmtKind::For { init, cond, step, body } => {
                let r = self.new_region(s, region);
                if let Some(e) = init {
                    self.record_expr(e, r);
                }
                if let Some(e) = cond {
                    self.record_expr(e, r);
                }
                self.stmt(body, r);
                if let Some(e) = step {
                    self.record_expr(e, r);
                }
            }
            StmtKind::Return(Some(e)) => self.record_expr(e, region),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;

    fn tree_of(src: &str) -> (RegionTree, hli_lang::ast::Program, Sema) {
        let (p, s) = compile_to_ast(src).unwrap();
        let t = build_region_tree(p.func("main").unwrap(), &s);
        (t, p, s)
    }

    #[test]
    fn flat_function_has_only_unit() {
        let (t, _, _) = tree_of("int main() { int x; x = 1; return x; }");
        assert_eq!(t.nodes.len(), 1);
        assert!(t.unit().children.is_empty());
    }

    #[test]
    fn nested_loops_nest_regions() {
        let (t, _, _) = tree_of(
            "double m[8][8];\nint main() {\n int i; int j;\n for (i = 0; i < 8; i++)\n  for (j = 0; j < 8; j++)\n   m[i][j] = 0.0;\n return 0;\n}",
        );
        assert_eq!(t.nodes.len(), 3);
        assert_eq!(t.nodes[1].parent, Some(0));
        assert_eq!(t.nodes[2].parent, Some(1));
        assert_eq!(t.nodes[2].depth, 2);
        assert!(t.nodes[1].canon.is_some());
        assert!(t.nodes[2].canon.is_some());
        assert!(t.is_ancestor(0, 2));
        assert!(t.is_ancestor(1, 2));
        assert!(!t.is_ancestor(2, 1));
    }

    #[test]
    fn sequential_loops_are_siblings() {
        let (t, _, _) = tree_of(
            "int a[4];\nint main() {\n int i;\n for (i = 0; i < 4; i++) a[i] = i;\n for (i = 0; i < 4; i++) a[i] += 1;\n return 0;\n}",
        );
        assert_eq!(t.nodes.len(), 3);
        assert_eq!(t.unit().children, vec![1, 2]);
        assert_eq!(t.nodes[1].parent, Some(0));
        assert_eq!(t.nodes[2].parent, Some(0));
    }

    #[test]
    fn while_and_do_become_regions_without_canon() {
        let (t, _, _) = tree_of(
            "int g;\nint main() {\n int i; i = 0;\n while (i < g) { i++; }\n do { i--; } while (i > 0);\n return i;\n}",
        );
        assert_eq!(t.nodes.len(), 3);
        assert!(t.nodes[1].canon.is_none());
        assert!(t.nodes[2].canon.is_none());
    }

    #[test]
    fn spans_cover_bodies() {
        let (t, _, _) = tree_of(
            "int a[10];\nint main() {\n int i;\n for (i = 0; i < 10; i++)\n {\n  a[i] = i;\n  a[i] += 2;\n }\n return 0;\n}",
        );
        let loop_node = &t.nodes[1];
        assert_eq!(loop_node.span.0, 4);
        assert!(loop_node.span.1 >= 7, "span {:?}", loop_node.span);
        // The unit spans at least as wide.
        assert!(t.unit().span.0 <= 4 && t.unit().span.1 >= loop_node.span.1);
    }

    #[test]
    fn header_exprs_belong_to_loop_region() {
        let (t, p, _) = tree_of(
            "int g;\nint a[10];\nint main() {\n int i;\n for (i = g; i < 10; i++) a[i] = 0;\n return 0;\n}",
        );
        let f = p.func("main").unwrap();
        // Find the init expression (`i = g`).
        let mut init_id = None;
        for s in &f.body.stmts {
            s.walk_stmts(&mut |st| {
                if let StmtKind::For { init: Some(e), .. } = &st.kind {
                    init_id = Some(e.id);
                }
            });
        }
        assert_eq!(t.region_of_expr(init_id.unwrap()), 1);
    }

    #[test]
    fn exprs_outside_loops_map_to_unit() {
        let (t, p, _) = tree_of("int g;\nint main() {\n g = 1;\n return g;\n}");
        let f = p.func("main").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[0].kind else { panic!() };
        assert_eq!(t.region_of_expr(e.id), 0);
    }

    #[test]
    fn bottom_up_orders_children_first() {
        let (t, _, _) = tree_of(
            "int a[4];\nint main() {\n int i; int j;\n for (i=0;i<4;i++) { for (j=0;j<4;j++) a[j]=j; }\n return 0;\n}",
        );
        let order = t.bottom_up();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn path_runs_root_to_node() {
        let (t, _, _) = tree_of(
            "int a[4];\nint main() {\n int i; int j;\n for (i=0;i<4;i++) for (j=0;j<4;j++) a[j]=j;\n return 0;\n}",
        );
        assert_eq!(t.path(2), vec![0, 1, 2]);
        assert_eq!(t.path(0), vec![0]);
    }
}
