//! Affine (linear) expression extraction from MiniC expressions.
//!
//! Array dependence testing works on subscripts of the form
//! `c0 + Σ ci·vi` where the `vi` are integer variables (loop induction
//! variables and loop-invariant symbols). This module extracts that form
//! from an AST expression when it exists.

use hli_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use hli_lang::sema::{Sema, SymId};
use hli_lang::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression: `constant + Σ coeff·sym`. Terms with coefficient 0
/// are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    pub terms: BTreeMap<SymId, i64>,
    pub constant: i64,
}

impl Affine {
    pub fn constant(c: i64) -> Self {
        Affine { terms: BTreeMap::new(), constant: c }
    }

    pub fn var(sym: SymId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(sym, 1);
        Affine { terms, constant: 0 }
    }

    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of a symbol (0 if absent).
    pub fn coeff(&self, sym: SymId) -> i64 {
        self.terms.get(&sym).copied().unwrap_or(0)
    }

    /// The expression with `sym`'s term removed.
    pub fn without(&self, sym: SymId) -> Affine {
        let mut a = self.clone();
        a.terms.remove(&sym);
        a
    }

    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(other.constant);
        for (&s, &c) in &other.terms {
            let e = out.terms.entry(s).or_insert(0);
            *e = e.wrapping_add(c);
            if *e == 0 {
                out.terms.remove(&s);
            }
        }
        out
    }

    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(&s, &c)| (s, c.wrapping_mul(k))).collect(),
            constant: self.constant.wrapping_mul(k),
        }
    }

    /// Do the two expressions differ only by a constant? Returns that
    /// constant (`self − other`) when so.
    pub fn const_difference(&self, other: &Affine) -> Option<i64> {
        if self.terms == other.terms {
            Some(self.constant - other.constant)
        } else {
            None
        }
    }

    /// Every symbol mentioned.
    pub fn symbols(&self) -> impl Iterator<Item = SymId> + '_ {
        self.terms.keys().copied()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "s{}", s)?;
                } else {
                    write!(f, "{}*s{}", c, s)?;
                }
                first = false;
            } else if *c >= 0 {
                write!(f, " + {}*s{}", c, s)?;
            } else {
                write!(f, " - {}*s{}", -c, s)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Extract the affine form of an integer expression, or `None` when it is
/// not affine (multiplication of two variables, division, calls, loads
/// through memory, ...). Only scalar `int` variables become terms; an
/// `int`-typed memory read (array element, deref) is not a symbol and makes
/// the expression non-affine.
pub fn extract(e: &Expr, sema: &Sema) -> Option<Affine> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(Affine::constant(*v)),
        ExprKind::Ident(_) => {
            let sym = *sema.ident_sym.get(&e.id)?;
            if sema.sym(sym).ty == Type::Int {
                Some(Affine::var(sym))
            } else {
                None
            }
        }
        ExprKind::Unary(UnOp::Neg, a) => Some(extract(a, sema)?.scale(-1)),
        ExprKind::Binary(op, a, b) => {
            let fa = extract(a, sema);
            let fb = extract(b, sema);
            match op {
                BinOp::Add => Some(fa?.add(&fb?)),
                BinOp::Sub => Some(fa?.sub(&fb?)),
                BinOp::Mul => {
                    let (fa, fb) = (fa?, fb?);
                    if fa.is_constant() {
                        Some(fb.scale(fa.constant))
                    } else if fb.is_constant() {
                        Some(fa.scale(fb.constant))
                    } else {
                        None
                    }
                }
                BinOp::Shl => {
                    let (fa, fb) = (fa?, fb?);
                    if fb.is_constant() && (0..=31).contains(&fb.constant) {
                        Some(fa.scale(1 << fb.constant))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::ast::{Program, StmtKind};
    use hli_lang::compile_to_ast;

    /// Parse a program whose main contains `x = <expr>;` and extract the
    /// RHS affine form.
    fn affine_of(expr_src: &str) -> (Option<Affine>, Sema, Program) {
        let src = format!(
            "int a[100]; int main() {{ int i; int j; int n; int x; i = 1; j = 2; n = 3; x = {expr_src}; return x; }}"
        );
        let (p, s) = compile_to_ast(&src).unwrap();
        let stmts = &p.funcs[0].body.stmts;
        let StmtKind::Expr(e) = &stmts[stmts.len() - 2].kind else { panic!() };
        let ExprKind::Assign(_, rhs) = &e.kind else { panic!() };
        let res = extract(rhs, &s);
        (res, s, p.clone())
    }

    fn sym_named(s: &Sema, name: &str) -> SymId {
        s.syms
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i as SymId)
            .unwrap()
    }

    #[test]
    fn constants_and_vars() {
        let (a, _, _) = affine_of("42");
        assert_eq!(a.unwrap(), Affine::constant(42));
        let (a, s, _) = affine_of("i");
        let a = a.unwrap();
        assert_eq!(a.coeff(sym_named(&s, "i")), 1);
        assert_eq!(a.constant, 0);
    }

    #[test]
    fn linear_combination() {
        let (a, s, _) = affine_of("2*i + 3*j - 4");
        let a = a.unwrap();
        assert_eq!(a.coeff(sym_named(&s, "i")), 2);
        assert_eq!(a.coeff(sym_named(&s, "j")), 3);
        assert_eq!(a.constant, -4);
    }

    #[test]
    fn nested_scaling_and_negation() {
        let (a, s, _) = affine_of("-(i - j) * 5 + 1");
        let a = a.unwrap();
        assert_eq!(a.coeff(sym_named(&s, "i")), -5);
        assert_eq!(a.coeff(sym_named(&s, "j")), 5);
        assert_eq!(a.constant, 1);
    }

    #[test]
    fn shift_as_scale() {
        let (a, s, _) = affine_of("i << 3");
        assert_eq!(a.unwrap().coeff(sym_named(&s, "i")), 8);
    }

    #[test]
    fn cancelling_terms_drop_out() {
        let (a, s, _) = affine_of("i + j - i");
        let a = a.unwrap();
        assert_eq!(a.coeff(sym_named(&s, "i")), 0);
        assert!(!a.terms.contains_key(&sym_named(&s, "i")));
        assert_eq!(a.coeff(sym_named(&s, "j")), 1);
    }

    #[test]
    fn nonaffine_rejected() {
        assert!(affine_of("i * j").0.is_none());
        assert!(affine_of("i / 2").0.is_none());
        assert!(affine_of("a[i]").0.is_none());
        assert!(affine_of("i % 3").0.is_none());
    }

    #[test]
    fn const_difference() {
        let (a, s, _) = affine_of("2*i + 5");
        let (b, s2, _) = affine_of("2*i + 1");
        // Same program shape ⇒ same SymIds for `i` in both parses.
        assert_eq!(sym_named(&s, "i"), sym_named(&s2, "i"));
        assert_eq!(a.unwrap().const_difference(&b.unwrap()), Some(4));
        let (c, _, _) = affine_of("3*i");
        let (d, _, _) = affine_of("2*i");
        assert_eq!(c.unwrap().const_difference(&d.unwrap()), None);
    }

    #[test]
    fn display_is_readable() {
        let (a, _, _) = affine_of("2*i - 3");
        let shown = a.unwrap().to_string();
        assert!(shown.contains("2*s"), "{shown}");
        assert!(shown.ends_with("- 3"), "{shown}");
        assert_eq!(Affine::constant(7).to_string(), "7");
    }
}
