//! Array dependence tests on affine subscripts.
//!
//! The test ladder the front-end runs per loop, per pair of accesses to the
//! same array:
//!
//! * **ZIV** (zero index variable) — neither subscript mentions the loop
//!   variable: equal ⇒ every iteration touches the same element
//!   ([`DepTest::Invariant`]); unequal constants ⇒ independent;
//! * **strong SIV** — both subscripts are `a·i + c` with the same `a`:
//!   the dependence distance is exact: `(c1 − c2) / a`;
//! * **weak-zero SIV** — one side's coefficient is 0: a single iteration
//!   conflicts with all others (reported as an unknown-distance carry);
//! * **general / MIV** — a GCD divisibility test, then Banerjee-style
//!   bounds when the trip count is known, to *disprove* dependence;
//!   otherwise [`DepTest::Unknown`].
//!
//! Results map directly onto the HLI tables: `SameIteration` feeds the
//! equivalent-access table, `Carried` the LCDD table (normalized `>`
//! direction with an exact distance), `Invariant` both, and `Unknown`
//! produces maybe-entries.

use crate::affine::Affine;
use hli_lang::sema::SymId;

/// Outcome of a dependence test between accesses `A` and `B` with respect
/// to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepTest {
    /// The two accesses can never touch the same element.
    Independent,
    /// Same element exactly when the iterations coincide (distance 0).
    SameIteration,
    /// Same element when B's iteration is A's plus `distance` (> 0). If
    /// `a_to_b` is false the relation is reversed (A later than B).
    Carried { distance: i64, a_to_b: bool },
    /// Both accesses touch one fixed element every iteration: equivalent
    /// within an iteration *and* carried at every distance.
    Invariant,
    /// The test cannot decide: assume a maybe-dependence at unknown
    /// distance (and maybe same-iteration overlap).
    Unknown,
}

/// Test subscripts `fa` (access A) and `fb` (access B) against loop
/// variable `ivar` with optional constant trip count.
///
/// Precondition (checked): the caller has already established that every
/// non-`ivar` symbol in either subscript is loop-invariant; violating terms
/// must instead make the caller report `Unknown`.
pub fn siv_test(fa: &Affine, fb: &Affine, ivar: SymId, trip: Option<i64>) -> DepTest {
    let a1 = fa.coeff(ivar);
    let a2 = fb.coeff(ivar);
    let ra = fa.without(ivar);
    let rb = fb.without(ivar);

    // The loop-invariant parts must differ by a known constant for the
    // exact tests; otherwise only the conservative paths below apply.
    let delta = ra.const_difference(&rb); // c1 - c2 when defined

    match (a1, a2) {
        (0, 0) => match delta {
            Some(0) => DepTest::Invariant,
            Some(_) => DepTest::Independent,
            None => DepTest::Unknown,
        },
        (a, b) if a == b => {
            // Strong SIV: a·i1 + c1 = a·i2 + c2  ⇒  i2 − i1 = (c1 − c2)/a.
            let Some(d) = delta else { return DepTest::Unknown };
            if d % a != 0 {
                return DepTest::Independent;
            }
            let dist = d / a; // i2 - i1
            if dist == 0 {
                return DepTest::SameIteration;
            }
            if let Some(n) = trip {
                if dist.abs() >= n {
                    return DepTest::Independent;
                }
            }
            if dist > 0 {
                DepTest::Carried { distance: dist, a_to_b: true }
            } else {
                DepTest::Carried { distance: -dist, a_to_b: false }
            }
        }
        (a, b) => {
            // Weak-zero and the general case share the refutation logic.
            let Some(d) = delta else { return DepTest::Unknown };
            // Solve a·i1 − b·i2 = −d = (c2 − c1) over iteration space.
            let rhs = -d;
            let g = gcd(a.unsigned_abs(), b.unsigned_abs());
            if g != 0 && rhs % (g as i64) != 0 {
                return DepTest::Independent;
            }
            if let Some(n) = trip {
                // Banerjee-style bounds of a·i1 − b·i2 over 0 ≤ i1,i2 < n.
                let hi_i = n - 1;
                let (amin, amax) = if a >= 0 { (0, a * hi_i) } else { (a * hi_i, 0) };
                let (bmin, bmax) = if b >= 0 {
                    (-b * hi_i, 0)
                } else {
                    (0, -b * hi_i)
                };
                let (lo, hi) = (amin + bmin, amax + bmax);
                if rhs < lo || rhs > hi {
                    return DepTest::Independent;
                }
            }
            DepTest::Unknown
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: SymId = 0;
    const N: SymId = 1;

    fn lin(coeff: i64, c: i64) -> Affine {
        Affine::var(I).scale(coeff).add(&Affine::constant(c))
    }

    #[test]
    fn ziv_equal_is_invariant() {
        assert_eq!(
            siv_test(&Affine::constant(5), &Affine::constant(5), I, Some(10)),
            DepTest::Invariant
        );
    }

    #[test]
    fn ziv_unequal_is_independent() {
        assert_eq!(
            siv_test(&Affine::constant(5), &Affine::constant(6), I, None),
            DepTest::Independent
        );
    }

    #[test]
    fn ziv_symbolic_equal_is_invariant() {
        // a[n] vs a[n]: identical symbolic subscripts.
        let f = Affine::var(N);
        assert_eq!(siv_test(&f, &f, I, None), DepTest::Invariant);
    }

    #[test]
    fn ziv_symbolic_mismatch_unknown() {
        // a[n] vs a[5]: cannot compare.
        assert_eq!(
            siv_test(&Affine::var(N), &Affine::constant(5), I, None),
            DepTest::Unknown
        );
    }

    #[test]
    fn strong_siv_same_subscript() {
        assert_eq!(siv_test(&lin(1, 0), &lin(1, 0), I, Some(10)), DepTest::SameIteration);
        assert_eq!(siv_test(&lin(3, 7), &lin(3, 7), I, None), DepTest::SameIteration);
    }

    #[test]
    fn strong_siv_distance_one() {
        // A = a[i], B = a[i-1]: i1 = i2 - 1 ⇒ B@i reads what A wrote at i-1;
        // c1 - c2 = 0 - (-1) = 1, a = 1 ⇒ distance 1, A→B.
        assert_eq!(
            siv_test(&lin(1, 0), &lin(1, -1), I, Some(10)),
            DepTest::Carried { distance: 1, a_to_b: true }
        );
        // Reversed operands flip the direction.
        assert_eq!(
            siv_test(&lin(1, -1), &lin(1, 0), I, Some(10)),
            DepTest::Carried { distance: 1, a_to_b: false }
        );
    }

    #[test]
    fn strong_siv_indivisible_offset_independent() {
        // a[2i] vs a[2i+1]: parity differs forever.
        assert_eq!(siv_test(&lin(2, 0), &lin(2, 1), I, None), DepTest::Independent);
    }

    #[test]
    fn strong_siv_distance_beyond_trip_independent() {
        // a[i] vs a[i-20] in a 10-trip loop.
        assert_eq!(siv_test(&lin(1, 0), &lin(1, -20), I, Some(10)), DepTest::Independent);
        // Without a trip count we must keep the dependence.
        assert_eq!(
            siv_test(&lin(1, 0), &lin(1, -20), I, None),
            DepTest::Carried { distance: 20, a_to_b: true }
        );
    }

    #[test]
    fn strong_siv_larger_stride() {
        // a[4i] vs a[4i-8]: distance 2.
        assert_eq!(
            siv_test(&lin(4, 0), &lin(4, -8), I, Some(100)),
            DepTest::Carried { distance: 2, a_to_b: true }
        );
    }

    #[test]
    fn symbolic_invariant_parts_cancel() {
        // a[i + n] vs a[i + n - 1].
        let f1 = lin(1, 0).add(&Affine::var(N));
        let f2 = lin(1, -1).add(&Affine::var(N));
        assert_eq!(
            siv_test(&f1, &f2, I, Some(50)),
            DepTest::Carried { distance: 1, a_to_b: true }
        );
    }

    #[test]
    fn symbolic_mismatch_is_unknown() {
        // a[i + n] vs a[i]: n unknown.
        let f1 = lin(1, 0).add(&Affine::var(N));
        let f2 = lin(1, 0);
        assert_eq!(siv_test(&f1, &f2, I, Some(50)), DepTest::Unknown);
    }

    #[test]
    fn weak_zero_siv_unknown_when_hit_possible() {
        // a[i] vs a[5] in a 10-trip loop: iteration 5 conflicts.
        assert_eq!(
            siv_test(&lin(1, 0), &Affine::constant(5), I, Some(10)),
            DepTest::Unknown
        );
    }

    #[test]
    fn weak_zero_siv_refuted_when_out_of_range() {
        // a[i] vs a[50] in a 10-trip loop: subscript never reaches 50.
        assert_eq!(
            siv_test(&lin(1, 0), &Affine::constant(50), I, Some(10)),
            DepTest::Independent
        );
    }

    #[test]
    fn gcd_test_refutes_mixed_strides() {
        // a[2i] vs a[2i'+1] (different coefficient signs as general case):
        // 2·i1 − 2·i2 = 1 has no integer solution.
        assert_eq!(siv_test(&lin(2, 0), &lin(2, 1), I, None), DepTest::Independent);
        // a[4i] vs a[2i+1]: gcd(4,2)=2 does not divide 1.
        assert_eq!(siv_test(&lin(4, 0), &lin(2, 1), I, None), DepTest::Independent);
    }

    #[test]
    fn general_case_unknown_when_solvable() {
        // a[2i] vs a[i]: overlaps at many pairs.
        assert_eq!(siv_test(&lin(2, 0), &lin(1, 0), I, Some(10)), DepTest::Unknown);
    }

    #[test]
    fn banerjee_refutes_disjoint_ranges() {
        // a[i] vs a[i' + 100] in a 10-trip loop: ranges [0,9] and [100,109].
        assert_eq!(siv_test(&lin(1, 0), &lin(1, 100), I, Some(10)), DepTest::Independent);
        // Negative-direction coefficients: a[-i] vs a[i + 100], trip 10:
        // ranges [-9,0] and [100,109].
        assert_eq!(siv_test(&lin(-1, 0), &lin(1, 100), I, Some(10)), DepTest::Independent);
    }

    #[test]
    fn crossing_accesses_stay_dependent() {
        // a[i] vs a[9-i], trip 10: they cross at i pairs summing to 9.
        assert_eq!(siv_test(&lin(1, 0), &lin(-1, 9), I, Some(10)), DepTest::Unknown);
    }
}
