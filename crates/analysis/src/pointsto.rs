//! Andersen-style points-to analysis.
//!
//! Flow- and context-insensitive inclusion-constraint analysis over the
//! whole program, in the precision class of the pointer analyses the paper
//! cites (refs 8 and 27) as front-end input to the alias table. Abstract
//! objects are declared variables (arrays as single objects). Constraints:
//!
//! * `p = &x`, `p = a` (array decay)      → base:  `pts(p) ⊇ {x}`
//! * `p = q`, `p = q ± k`                 → copy:  `pts(p) ⊇ pts(q)`
//! * `p = *q`, `p = q[i]` (pointer load)  → load:  `pts(p) ⊇ pts(o)` ∀ `o ∈ pts(q)`
//! * `*p = q`, `p[i] = q` (pointer store) → store: `pts(o) ⊇ pts(q)` ∀ `o ∈ pts(p)`
//! * calls bind argument sources to parameters; `return e` feeds a
//!   per-function return node.
//!
//! A pointer with an *empty* final set is treated as **unbounded** by
//! consumers ([`PointsTo::may_point_to`] returns true for everything):
//! an unconstrained pointer (e.g. one never assigned) must stay
//! conservative.

use hli_lang::ast::*;
use hli_lang::sema::{Sema, SymId};
use std::collections::{BTreeSet, HashMap};

/// A constraint-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Node {
    Sym(SymId),
    /// The return value of function `index`.
    Ret(u32),
}

/// The result: may-point-to sets for every pointer-valued symbol.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    sets: HashMap<SymId, BTreeSet<SymId>>,
}

impl PointsTo {
    /// The set of objects `p` may point to (empty = unconstrained).
    pub fn targets(&self, p: SymId) -> Option<&BTreeSet<SymId>> {
        self.sets.get(&p).filter(|s| !s.is_empty())
    }

    /// May `p` point to `obj`? Unconstrained pointers may point anywhere.
    pub fn may_point_to(&self, p: SymId, obj: SymId) -> bool {
        match self.targets(p) {
            Some(s) => s.contains(&obj),
            None => true,
        }
    }

    /// Is `p`'s target set unknown (treat as the universe)?
    pub fn is_unbounded(&self, p: SymId) -> bool {
        self.targets(p).is_none()
    }

    /// May two pointers reference a common object?
    pub fn may_alias(&self, p: SymId, q: SymId) -> bool {
        match (self.targets(p), self.targets(q)) {
            (Some(a), Some(b)) => a.intersection(b).next().is_some(),
            _ => true,
        }
    }
}

/// Run the analysis over a whole program.
pub fn analyze(prog: &Program, sema: &Sema) -> PointsTo {
    let mut cx = Collector {
        sema,
        current_func: None,
        base: Vec::new(),
        copy: Vec::new(),
        load: Vec::new(),
        store: Vec::new(),
    };
    for f in &prog.funcs {
        cx.func(f);
    }
    solve(cx)
}

/// A "source term" of a pointer-valued expression.
#[derive(Debug, Clone, Copy)]
enum SrcTerm {
    /// The address of an object.
    Base(SymId),
    /// The value of a node.
    Node(Node),
    /// The value loaded through a node (`*q`).
    Deref(Node),
}

struct Collector<'a> {
    sema: &'a Sema,
    current_func: Option<u32>,
    base: Vec<(Node, SymId)>,
    copy: Vec<(Node, Node)>,
    load: Vec<(Node, Node)>,
    store: Vec<(Node, Node)>,
}

impl<'a> Collector<'a> {
    fn func(&mut self, f: &FuncDef) {
        self.current_func = Some(self.sema.func_sigs[&f.name].index);
        self.block(&f.body);
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    self.expr(init);
                    if d.ty.is_pointer() {
                        let sym = self.sema.decl_sym[&s.id];
                        let terms = self.sources(init);
                        self.bind(Node::Sym(sym), &terms);
                    }
                }
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::Block(b) => self.block(b),
            StmtKind::If { cond, then_body, else_body } => {
                self.expr(cond);
                self.stmt(then_body);
                if let Some(e) = else_body {
                    self.stmt(e);
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                self.expr(cond);
                self.stmt(body);
            }
            StmtKind::For { init, cond, step, body } => {
                for e in [init, cond, step].into_iter().flatten() {
                    self.expr(e);
                }
                self.stmt(body);
            }
            StmtKind::Return(Some(e)) => {
                self.expr(e);
                if self.sema.ty_of(e).decayed().is_pointer() {
                    let terms = self.sources(e);
                    let fidx = self.current_func.expect("inside a function");
                    self.bind(Node::Ret(fidx), &terms);
                }
            }
            _ => {}
        }
    }

    /// Record constraints arising from an expression tree.
    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign(lhs, rhs) | ExprKind::CompoundAssign(_, lhs, rhs) => {
                self.expr(rhs);
                // Subscript expressions inside the lhs may contain calls etc.
                self.lhs_subexprs(lhs);
                if self.sema.ty_of(lhs).is_pointer() {
                    let terms = self.sources(rhs);
                    match &lhs.kind {
                        ExprKind::Ident(_) => {
                            let sym = self.sema.sym_of(lhs);
                            self.bind(Node::Sym(sym), &terms);
                        }
                        ExprKind::Deref(q) => {
                            let qs = self.sources(q);
                            self.bind_through(&qs, &terms);
                        }
                        ExprKind::Index(q, _) => {
                            // Element of an array-of-pointers, or through a
                            // pointer-to-pointer.
                            match hli_lang::memwalk::resolve_array_access(lhs, self.sema) {
                                Some((arr, _)) => {
                                    // The array object itself stands for all
                                    // its elements.
                                    self.bind(Node::Sym(arr), &terms);
                                }
                                None => {
                                    let qs = self.sources(q);
                                    self.bind_through(&qs, &terms);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            ExprKind::IncDec(_, l) => self.lhs_subexprs(l),
            ExprKind::Call(name, args) => {
                for a in args {
                    self.expr(a);
                }
                if let Some(sig) = self.sema.func_sigs.get(name) {
                    let fidx = sig.index as usize;
                    let params = self.sema.func_params[fidx].clone();
                    for (i, a) in args.iter().enumerate() {
                        if i < params.len() && self.sema.sym(params[i]).ty.is_pointer() {
                            let terms = self.sources(a);
                            self.bind(Node::Sym(params[i]), &terms);
                        }
                    }
                }
            }
            ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::Addr(a) => self.expr(a),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            _ => {}
        }
    }

    /// Visit subscript/pointer sub-expressions of an lvalue for their own
    /// side constraints (calls in subscripts, nested assigns).
    fn lhs_subexprs(&mut self, lv: &Expr) {
        match &lv.kind {
            ExprKind::Index(b, i) => {
                self.lhs_subexprs(b);
                self.expr(i);
            }
            ExprKind::Deref(p) => self.expr(p),
            _ => {}
        }
    }

    /// The source terms of a pointer-valued expression.
    fn sources(&mut self, e: &Expr) -> Vec<SrcTerm> {
        match &e.kind {
            ExprKind::Addr(lv) => self.addr_sources(lv),
            ExprKind::Ident(_) => {
                let sym = self.sema.sym_of(e);
                if self.sema.sym(sym).ty.is_array() {
                    vec![SrcTerm::Base(sym)]
                } else {
                    vec![SrcTerm::Node(Node::Sym(sym))]
                }
            }
            ExprKind::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                let mut out = Vec::new();
                if self.sema.ty_of(a).decayed().is_pointer() {
                    out.extend(self.sources(a));
                }
                if self.sema.ty_of(b).decayed().is_pointer() {
                    out.extend(self.sources(b));
                }
                out
            }
            ExprKind::Deref(q) => {
                let inner = self.sources(q);
                inner
                    .into_iter()
                    .filter_map(|t| match t {
                        SrcTerm::Node(n) => Some(SrcTerm::Deref(n)),
                        // *(&x) = x's value: x is a pointer object here.
                        SrcTerm::Base(s) => Some(SrcTerm::Node(Node::Sym(s))),
                        // **q: collapse one level conservatively — treat as
                        // unknown by returning nothing (consumers go
                        // unbounded).
                        SrcTerm::Deref(_) => None,
                    })
                    .collect()
            }
            ExprKind::Index(q, _) => {
                if self.sema.ty_of(e).is_array() {
                    // Partial index of a multi-dim array: still the array.
                    return self.sources(q);
                }
                match hli_lang::memwalk::resolve_array_access(e, self.sema) {
                    Some((arr, _)) => vec![SrcTerm::Deref(Node::Sym(arr))],
                    None => {
                        let inner = self.sources(q);
                        inner
                            .into_iter()
                            .filter_map(|t| match t {
                                SrcTerm::Node(n) => Some(SrcTerm::Deref(n)),
                                SrcTerm::Base(s) => Some(SrcTerm::Deref(Node::Sym(s))),
                                SrcTerm::Deref(_) => None,
                            })
                            .collect()
                    }
                }
            }
            ExprKind::Call(name, _) => match self.sema.func_sigs.get(name) {
                Some(sig) => vec![SrcTerm::Node(Node::Ret(sig.index))],
                None => vec![],
            },
            ExprKind::Assign(_, r) | ExprKind::CompoundAssign(_, _, r) => self.sources(r),
            ExprKind::IncDec(_, l) => self.sources(l),
            _ => vec![],
        }
    }

    /// Source terms of `&lv`.
    fn addr_sources(&mut self, lv: &Expr) -> Vec<SrcTerm> {
        match &lv.kind {
            ExprKind::Ident(_) => vec![SrcTerm::Base(self.sema.sym_of(lv))],
            ExprKind::Index(b, _) => {
                match hli_lang::memwalk::resolve_array_access(lv, self.sema) {
                    Some((arr, _)) => vec![SrcTerm::Base(arr)],
                    None => self.sources(b), // &p[i] ≡ p + i
                }
            }
            ExprKind::Deref(q) => self.sources(q), // &*q ≡ q
            _ => vec![],
        }
    }

    fn bind(&mut self, dst: Node, terms: &[SrcTerm]) {
        for t in terms {
            match t {
                SrcTerm::Base(s) => self.base.push((dst, *s)),
                SrcTerm::Node(n) => self.copy.push((dst, *n)),
                SrcTerm::Deref(n) => self.load.push((dst, *n)),
            }
        }
    }

    /// `*q ⊇ terms` for every pointer node of `q`.
    fn bind_through(&mut self, q_terms: &[SrcTerm], terms: &[SrcTerm]) {
        for q in q_terms {
            match q {
                SrcTerm::Node(n) => {
                    for t in terms {
                        match t {
                            // *n gains the address of s: need an auxiliary
                            // node; model as a store of a fresh base-holding
                            // node. Simplest: for each object o in pts(n)
                            // (resolved at solve time) pts(o) ⊇ {s}. We
                            // encode that as a store from a synthetic node.
                            SrcTerm::Base(s) => {
                                let aux = Node::Sym(u32::MAX - self.base.len() as u32);
                                self.base.push((aux, *s));
                                self.store.push((*n, aux));
                            }
                            SrcTerm::Node(src) => self.store.push((*n, *src)),
                            SrcTerm::Deref(src) => {
                                let aux = Node::Sym(u32::MAX / 2 - self.load.len() as u32);
                                self.load.push((aux, *src));
                                self.store.push((*n, aux));
                            }
                        }
                    }
                }
                SrcTerm::Base(s) => {
                    // *(&x) = ...: direct assignment to x.
                    for t in terms {
                        match t {
                            SrcTerm::Base(b) => self.base.push((Node::Sym(*s), *b)),
                            SrcTerm::Node(n) => self.copy.push((Node::Sym(*s), *n)),
                            SrcTerm::Deref(n) => self.load.push((Node::Sym(*s), *n)),
                        }
                    }
                }
                SrcTerm::Deref(_) => { /* ** stores: beyond MiniC's depth, drop */ }
            }
        }
    }
}

fn solve(cx: Collector<'_>) -> PointsTo {
    let mut pts: HashMap<Node, BTreeSet<SymId>> = HashMap::new();
    for (n, s) in &cx.base {
        pts.entry(*n).or_default().insert(*s);
    }
    // Iterate to fixpoint. Program sizes here are small (thousands of
    // constraints), so a simple round-robin pass is fine.
    loop {
        let mut changed = false;
        for (dst, src) in &cx.copy {
            let add: Vec<SymId> =
                pts.get(src).map(|s| s.iter().copied().collect()).unwrap_or_default();
            if !add.is_empty() {
                let d = pts.entry(*dst).or_default();
                for s in add {
                    changed |= d.insert(s);
                }
            }
        }
        for (dst, from) in &cx.load {
            let objs: Vec<SymId> =
                pts.get(from).map(|s| s.iter().copied().collect()).unwrap_or_default();
            let mut add = Vec::new();
            for o in objs {
                if let Some(s) = pts.get(&Node::Sym(o)) {
                    add.extend(s.iter().copied());
                }
            }
            if !add.is_empty() {
                let d = pts.entry(*dst).or_default();
                for s in add {
                    changed |= d.insert(s);
                }
            }
        }
        for (into, src) in &cx.store {
            let objs: Vec<SymId> =
                pts.get(into).map(|s| s.iter().copied().collect()).unwrap_or_default();
            let vals: Vec<SymId> =
                pts.get(src).map(|s| s.iter().copied().collect()).unwrap_or_default();
            if vals.is_empty() {
                continue;
            }
            for o in objs {
                let d = pts.entry(Node::Sym(o)).or_default();
                for &v in &vals {
                    changed |= d.insert(v);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = PointsTo::default();
    for (n, s) in pts {
        if let Node::Sym(sym) = n {
            // Skip the synthetic auxiliary nodes.
            if sym < u32::MAX / 4 {
                out.sets.insert(sym, s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hli_lang::compile_to_ast;

    fn pts_of(src: &str) -> (PointsTo, Sema) {
        let (p, s) = compile_to_ast(src).unwrap();
        let pt = analyze(&p, &s);
        (pt, s)
    }

    fn sym(s: &Sema, name: &str) -> SymId {
        s.syms
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i as SymId)
            .unwrap()
    }

    #[test]
    fn address_of_scalar() {
        let (pt, s) = pts_of("int main() { int x; int *p; p = &x; return *p; }");
        let (p, x) = (sym(&s, "p"), sym(&s, "x"));
        assert!(pt.may_point_to(p, x));
        assert_eq!(pt.targets(p).unwrap().len(), 1);
    }

    #[test]
    fn array_decay_and_element_address() {
        let (pt, s) = pts_of(
            "int a[10]; int b[10]; int main() { int *p; int *q; p = a; q = &b[3]; return *p + *q; }",
        );
        assert!(pt.may_point_to(sym(&s, "p"), sym(&s, "a")));
        assert!(!pt.may_point_to(sym(&s, "p"), sym(&s, "b")));
        assert!(pt.may_point_to(sym(&s, "q"), sym(&s, "b")));
    }

    #[test]
    fn copy_and_arith_propagate() {
        let (pt, s) = pts_of(
            "int a[10]; int main() { int *p; int *q; int *r; p = a; q = p; r = q + 2; return *r; }",
        );
        assert!(pt.may_point_to(sym(&s, "r"), sym(&s, "a")));
    }

    #[test]
    fn distinct_pointers_dont_alias() {
        let (pt, s) = pts_of(
            "int a[10]; int b[10]; int main() { int *p; int *q; p = a; q = b; return *p + *q; }",
        );
        assert!(!pt.may_alias(sym(&s, "p"), sym(&s, "q")));
        let (pt2, s2) =
            pts_of("int a[10]; int main() { int *p; int *q; p = a; q = &a[5]; return *p + *q; }");
        assert!(pt2.may_alias(sym(&s2, "p"), sym(&s2, "q")));
    }

    #[test]
    fn unassigned_pointer_is_unbounded() {
        let (pt, s) = pts_of("int g; int main() { int *p; return g; }");
        assert!(pt.is_unbounded(sym(&s, "p")));
        assert!(pt.may_point_to(sym(&s, "p"), sym(&s, "g")));
    }

    #[test]
    fn pointer_params_bind_call_sites() {
        let (pt, s) = pts_of(
            "int a[8]; int b[8]; \
             void f(int *p) { *p = 1; } \
             int main() { f(a); f(&b[2]); return 0; }",
        );
        let p = sym(&s, "p");
        assert!(pt.may_point_to(p, sym(&s, "a")));
        assert!(pt.may_point_to(p, sym(&s, "b")));
        assert_eq!(pt.targets(p).unwrap().len(), 2);
    }

    #[test]
    fn disjoint_params_stay_disjoint() {
        let (pt, s) = pts_of(
            "int a[8]; int b[8]; \
             void f(int *p, int *q) { *p = *q; } \
             int main() { f(a, b); return 0; }",
        );
        assert!(!pt.may_alias(sym(&s, "p"), sym(&s, "q")));
    }

    #[test]
    fn return_values_flow() {
        let (pt, s) = pts_of(
            "int a[8]; \
             int *pick() { return &a[1]; } \
             int main() { int *p; p = pick(); return *p; }",
        );
        assert!(pt.may_point_to(sym(&s, "p"), sym(&s, "a")));
        assert!(!pt.is_unbounded(sym(&s, "p")));
    }

    #[test]
    fn deref_assignment_through_ptr_to_ptr() {
        let (pt, s) =
            pts_of("int x; int main() { int *p; int **h; p = &x; h = &p; *h = &x; return *p; }");
        assert!(pt.may_point_to(sym(&s, "h"), sym(&s, "p")));
        assert!(pt.may_point_to(sym(&s, "p"), sym(&s, "x")));
    }

    #[test]
    fn pointer_load_through_ptr_to_ptr() {
        let (pt, s) = pts_of(
            "int x; int main() { int *p; int **h; int *r; p = &x; h = &p; r = *h; return *r; }",
        );
        assert!(pt.may_point_to(sym(&s, "r"), sym(&s, "x")));
        assert!(!pt.is_unbounded(sym(&s, "r")));
    }

    #[test]
    fn conditional_assignment_unions() {
        let (pt, s) = pts_of(
            "int a[4]; int b[4]; int g; \
             int main() { int *p; if (g) p = a; else p = b; return *p; }",
        );
        let p = sym(&s, "p");
        assert!(pt.may_point_to(p, sym(&s, "a")));
        assert!(pt.may_point_to(p, sym(&s, "b")));
    }
}
