//! # hli-analysis — front-end program analyses
//!
//! The paper's front-end (SUIF) contributes exactly the analyses a back-end
//! like GCC 2.7 lacks: array data dependence testing, pointer alias
//! analysis, and interprocedural REF/MOD summaries. This crate implements
//! those analysis classes over the MiniC AST so `hli-frontend` can populate
//! the HLI tables:
//!
//! * [`affine`] — linear (affine) subscript extraction: `a[2*i + j - 1]`
//!   becomes `2·i + 1·j − 1` over symbol coefficients;
//! * [`deptest`] — the dependence-test ladder on affine subscripts: ZIV,
//!   strong SIV (exact distances), weak SIV, and GCD/Banerjee for the
//!   general case, yielding *independent / same-iteration / carried(d) /
//!   invariant / unknown* answers that map 1:1 onto the HLI's equivalence,
//!   alias and LCDD tables;
//! * [`sections`] — bounded regular sections (`a[lo..hi]` per dimension)
//!   used to summarize a loop's accesses at the enclosing region, exactly
//!   how Figure 2's `a[0..9]` classes arise;
//! * [`regiontree`] — the hierarchical region structure (program unit +
//!   loops) with canonical-loop bounds and a precise expression→region map;
//! * [`pointsto`] — a flow- and context-insensitive Andersen-style
//!   points-to analysis (inclusion constraints, worklist solved) feeding
//!   the alias table;
//! * [`refmod`] — call graph + bottom-up interprocedural REF/MOD fixpoint
//!   (objects a call may read/write, through pointers included) feeding the
//!   call REF/MOD table.

pub mod affine;
pub mod deptest;
pub mod pointsto;
pub mod refmod;
pub mod regiontree;
pub mod sections;

pub use affine::Affine;
pub use deptest::{siv_test, DepTest};
pub use pointsto::PointsTo;
pub use refmod::{RefMod, RefModSet};
pub use regiontree::{build_region_tree, RegionNode, RegionTree};
pub use sections::{DimRange, SecBound, Section};
