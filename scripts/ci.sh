#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build and tests.
# The workspace is std-only; everything here must pass with no network
# and no registry access (CARGO_NET_OFFLINE pins that assumption).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== decoder fuzz tests (release)"
cargo test -q --release -p hli-core --test fuzz_decode

echo "== obsdiff against pinned baseline (tiny suite)"
target/release/table2 12 2 --stats json 2>/dev/null > target/obsdiff-current.txt
target/release/obsdiff tests/baselines/table2-tiny.json target/obsdiff-current.txt

echo "== import/caching smoke (lazy saves bytes, shared caches hit, counters agree)"
target/release/importbench 12 2 > /dev/null

echo "CI green."
