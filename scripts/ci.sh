#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build and tests.
# The workspace is std-only; everything here must pass with no network
# and no registry access (CARGO_NET_OFFLINE pins that assumption).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== cargo doc (no deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== doctests (pins docs/QUERYBOOK.md examples)"
cargo test -q --doc --workspace

echo "== decoder fuzz tests (release)"
cargo test -q --release -p hli-core --test fuzz_decode

echo "== latency agreement (scheduler table == simulator table on every target)"
cargo test -q --release -p hli-machine --test latency_agreement

echo "== three-target smoke (tiny Table 2 on every registered machine model)"
for m in r4600 r10000 w4; do
  target/release/table2 12 2 --machine "$m" > /dev/null
done

echo "== obsdiff against pinned baseline (tiny suite)"
target/release/table2 12 2 --stats json 2>/dev/null > target/obsdiff-current.txt
target/release/obsdiff tests/baselines/table2-tiny.json target/obsdiff-current.txt

echo "== obsreport attribution gate (Fig.4/Fig.5 fixture: spans, estimates and"
echo "   per-table benefit/cost rollup match the pinned baseline)"
target/release/hlicc build tests/fixtures/fig45.c --cse --licm --stats json \
  --provenance-out target/ci-fig45.jsonl > target/ci-fig45-stats.json 2>/dev/null
target/release/obsreport --stats target/ci-fig45-stats.json \
  --provenance target/ci-fig45.jsonl --json \
  --compare tests/baselines/obsreport-fig45.json > /dev/null

echo "== import/caching/threading smoke (lazy saves bytes, zero-copy saves more,"
echo "   shared caches hit, all 9 {import,cache,jobs} configurations — including"
echo "   the owned-vs-view pairs — agree on the Table-2 query counters)"
target/release/importbench 12 2 --jobs 4 > /dev/null

echo "== faultbench smoke (seeded mutation campaign: no panics, no unsound"
echo "   HLI-justified decisions under corrupted images or tables)"
target/release/faultbench 1500 --table 150 > /dev/null

echo "== quarantine determinism (counters + provenance byte-identical across --jobs)"
target/release/faultbench --quarantine-check --jobs 8

echo "== perfbench smoke (generated corpus, differential oracle, parallel driver)"
target/release/perfbench --seeds 7 --programs 3 --funcs 10 --jobs 4 > /dev/null

echo "== perfbench regression gate (counters exact, times/rates/RSS soft)"
target/release/perfbench --compare BENCH_6.json > /dev/null

echo "== servebench check (docs/SERVE.md determinism contract: jobs-1-vs-8 and"
echo "   cold-vs-warm byte identity, steady-state hit rate >= 80%)"
target/release/servebench --programs 2 --funcs 5 --epochs 3 --jobs 4 --check > /dev/null

echo "CI green."
